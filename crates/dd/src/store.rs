//! Thread-safe shared decision-diagram core for portfolio racing.
//!
//! A [`SharedStore`] is the *canonicity-preserving* half of a
//! [`DdPackage`](crate::DdPackage) split out so that several packages — one
//! per racing thread — can intern into the same node space. It owns
//!
//! * the canonical [`SharedComplexTable`]: the SoA weight lanes behind a
//!   reader/writer lock plus bucket maps striped by bucket-key range into
//!   [`CSTRIPES`] independently locked maps, so concurrent weight publishes
//!   from different value ranges never serialise on one global mutex,
//! * the vector/matrix unique tables, sharded by node hash into
//!   [`SHARDS`] independently locked maps,
//! * the node arenas behind reader/writer locks (writers append on
//!   interning misses; slots are only recycled behind the GC barrier),
//! * the immutable **generation snapshot** (an `Arc`-swapped copy of the
//!   arenas and weight lanes, republished by every collection) that
//!   workspaces pin for lock-free reads,
//! * the shared gate-diagram cache (an L2 behind every workspace's lossy L1),
//! * the free lists, the GC barrier and telemetry counters.
//!
//! The per-thread half stays inside `DdPackage`: lossy compute caches (they
//! are overwrite-on-collision, so thread-local is both correct and
//! lock-free), `Budget`/`CancelToken`, protection roots and `MemoryStats`.
//! [`SharedHandle`] is the glue a package holds when attached.
//!
//! # Epoch-snapshot reads
//!
//! Every collection publishes a new [`Generation`]: an immutable copy of the
//! node arenas and the complex-table lanes taken while the world is stopped.
//! A workspace **pins** the current generation when it attaches and re-pins
//! at the safe point after every collection it participates in. Between safe
//! points all reads of structure that predates the pin go straight to the
//! pinned snapshot — no lock, no `RefCell`, no invalidation. Structure
//! *newer* than the pin (the arena/lane tails grown this epoch, plus
//! free-list slots recycled this epoch) is read through small per-workspace
//! tail mirrors and overlay maps that refill from the shared structures
//! under the arena read locks, exactly like the pre-epoch read mirrors did —
//! but they cover only the epoch's growth, not the whole store.
//!
//! This replaces the old invalidate-on-barrier mirror scheme: there are no
//! mirror invalidations anymore (the counter remains, pinned at zero), and —
//! because a re-pin swaps the snapshot instead of wiping local state — the
//! weight-arithmetic memos **survive collections**. Their weight indices are
//! published as GC roots (see `memo_weight_roots`), and
//! [`retain_marked`](SharedComplexTable::retain_marked) keeps marked indices
//! stable, so surviving memo entries remain exact.
//!
//! Retired generations are reclaimed *deferredly*: the `Arc` swap drops the
//! store's reference, and the memory is freed when the last workspace still
//! pinning the old generation re-pins or detaches. The `epoch_pins`,
//! `retired_generations` and `deferred_reclaim_bytes` counters make that
//! lifecycle observable.
//!
//! # Canonicity across threads
//!
//! Node normalisation is a deterministic function of canonical inputs: equal
//! child edges produce bit-identical weights, weight interning linearises
//! tolerance merging, and each shard mutex linearises node interning — so
//! two threads constructing the same subdiagram always end up with the
//! *same* `(NodeId, CIdx)` edge. That is what turns the portfolio's
//! duplicated work into cross-thread cache hits.
//!
//! Weight canonicity survives striping because a publish locks the stripes
//! of *all three* bucket-key rows its probe window touches (ascending, so
//! deadlock-free). Two values within tolerance of each other sit at most one
//! bucket row apart, hence each publisher's locked window covers the other's
//! home stripe: concurrent publishes of mergeable values serialise on that
//! common stripe, and whichever runs second finds the first's entry in its
//! probe. All workspace publishes go through [`SharedComplexTable::publish`]
//! (the batched [`SharedHandle::intern_batch`] path and the scalar
//! [`SharedHandle::intern`] both bottom out there), so a batch charges each
//! stripe lock once per batch instead of once per weight.
//!
//! # Garbage collection: the safe-point barrier
//!
//! Collection on a shared store is a **stop-the-world barrier** that runs
//! *mid-race* (it replaced the PR-3 protocol of deferring collection until a
//! sole workspace remained, which let miter-heavy races outgrow memory):
//!
//! 1. A workspace whose GC threshold trips elects itself the collector by
//!    `try_lock`ing [`SharedStore::gc_lock`] (never blocking — a blocked
//!    election would deadlock against a collector waiting for parkers). It
//!    raises `gc_requested` and waits.
//! 2. Every other attached workspace polls `gc_requested` at its operation
//!    safe points (the entries of `apply`/`mul`/`add`/`transpose`, the same
//!    places automatic collection triggers) and **parks**: it publishes its
//!    roots — protected edges, in-flight operands, identity and local gate
//!    caches, and its memo-table weight indices — into the store's barrier
//!    state and blocks.
//! 3. Once all other attachments are parked (detaching also counts — a
//!    finished scheme's workspace simply leaves), the collector sweeps from
//!    *all* published roots plus its own plus the shared gate cache,
//!    rebuilds the sharded unique tables, compacts the
//!    [`SharedComplexTable`] and **publishes a fresh generation snapshot**
//!    before releasing the barrier. Parked workspaces wake, re-pin the new
//!    generation (dropping their epoch tails and overlays — their memos
//!    survive) and continue; protected edges keep their node ids, so parked
//!    diagrams stay pointer-identical across the collection.
//!
//! An attached workspace that never reaches a safe point (idle, or stuck in
//! one very long operation) would stall the world, so the collector gives up
//! after a bounded patience and falls back to the old deferral semantics
//! (nothing is reclaimed, the caller's threshold backs off). Attachment
//! takes `gc_lock` too, so no workspace can appear mid-sweep; workspaces
//! attaching later pin the freshly published generation and can never
//! observe a stale slot.
//!
//! # Warm reuse across races
//!
//! A store may outlive a race: the batch driver keeps one store per register
//! width alive across circuit pairs, running a barrier collection between
//! pairs so only the gate-diagram cache (a GC root) and the canonical nodes
//! under it carry over. [`SharedStore::begin_race`] marks the boundary;
//! canonical hits on structure that predates the mark are counted as
//! [`SharedStoreStats::warm_hits`] — the cross-*pair* sharing the pool
//! exists for.
//!
//! # Lock poisoning
//!
//! Store locks guard data that is consistent at every panic point (critical
//! sections only move `Copy` values between already-validated structures),
//! so a racing scheme that panics must not take the whole portfolio down:
//! every store lock acquisition recovers from poisoning instead of
//! propagating the panic to innocent schemes. The panicking scheme itself is
//! reported as failed by the portfolio engine.

use crate::cache::LossyCache;
use crate::complex::{Complex, TOLERANCE};
use crate::hash::{fx_hash, FxHashMap};
use crate::limits::Budget;
use crate::node::{MEdge, MNode, NodeId, VEdge, VNode};
use crate::package::{DdPackage, GateKey, MemoryConfig};
use crate::table::CIdx;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Number of independently locked unique-table shards per node kind.
///
/// Sixteen shards keep lock contention negligible for the portfolio's
/// typical 4–8 racing schemes while staying cheap to clear and rebuild
/// during collection. Must be a power of two (shard = hash & (SHARDS - 1)).
pub const SHARDS: usize = 16;

/// Number of independently locked bucket stripes in the shared complex
/// table. Must be a power of two.
pub const CSTRIPES: usize = 16;

/// Locks a store mutex, recovering from poisoning (see the module docs).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks a store arena, recovering from poisoning.
pub(crate) fn read<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks a store arena, recovering from poisoning.
pub(crate) fn write<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Locks a store mutex on the hot path, recording whether the acquisition
/// had to block and, if so, for how long. The uncontended path is a single
/// `try_lock` (same cost as `lock`); the clock is only read when the lock
/// was actually contended, so the measurement itself stays off the common
/// path.
#[inline]
fn lock_timed<'a, T>(
    mutex: &'a Mutex<T>,
    waits: &mut u64,
    contention_ns: &mut u64,
) -> MutexGuard<'a, T> {
    match mutex.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            let start = std::time::Instant::now();
            let guard = lock(mutex);
            *waits += 1;
            *contention_ns += start.elapsed().as_nanos() as u64;
            guard
        }
    }
}

/// Read-locks an `RwLock` on the hot path with the same contention
/// accounting as [`lock_timed`].
#[inline]
fn read_timed<'a, T>(
    rwlock: &'a RwLock<T>,
    waits: &mut u64,
    contention_ns: &mut u64,
) -> RwLockReadGuard<'a, T> {
    match rwlock.try_read() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            let start = std::time::Instant::now();
            let guard = read(rwlock);
            *waits += 1;
            *contention_ns += start.elapsed().as_nanos() as u64;
            guard
        }
    }
}

/// Write-locks an `RwLock` on the hot path with the same contention
/// accounting as [`lock_timed`].
#[inline]
fn write_timed<'a, T>(
    rwlock: &'a RwLock<T>,
    waits: &mut u64,
    contention_ns: &mut u64,
) -> RwLockWriteGuard<'a, T> {
    match rwlock.try_write() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            let start = std::time::Instant::now();
            let guard = write(rwlock);
            *waits += 1;
            *contention_ns += start.elapsed().as_nanos() as u64;
            guard
        }
    }
}

// ----------------------------------------------------------------------
// Generation snapshots
// ----------------------------------------------------------------------

/// An immutable snapshot of the shared structures, published by every
/// collection and pinned by workspaces for lock-free reads.
///
/// Slots freed at publish time carry their sentinels (`FREE` nodes, NaN
/// weights) so a pinned reader can detect intra-epoch recycling and fall
/// back to the live structures.
#[derive(Debug)]
pub(crate) struct Generation {
    /// Monotonic snapshot number (0 is the empty store).
    pub(crate) number: u64,
    pub(crate) vnodes: Vec<VNode>,
    pub(crate) mnodes: Vec<MNode>,
    /// Real lane of the complex table at publish time.
    pub(crate) cre: Vec<f64>,
    /// Imaginary lane of the complex table at publish time.
    pub(crate) cim: Vec<f64>,
}

impl Generation {
    /// Approximate heap footprint, for the deferred-reclaim gauge.
    fn bytes(&self) -> u64 {
        (self.vnodes.capacity() * std::mem::size_of::<VNode>()
            + self.mnodes.capacity() * std::mem::size_of::<MNode>()
            + (self.cre.capacity() + self.cim.capacity()) * std::mem::size_of::<f64>())
            as u64
    }
}

// ----------------------------------------------------------------------
// Striped shared complex table
// ----------------------------------------------------------------------

/// Grid spacing used for bucketing values during lookup; same constant as
/// the private [`ComplexTable`](crate::ComplexTable) so shared and private
/// packages merge identically.
const BUCKET: f64 = TOLERANCE;

type Buckets = FxHashMap<(i64, i64), Vec<u32>>;

/// SoA value lanes of the shared complex table (guarded by one `RwLock`:
/// readers are tail refills and snapshot clones, writers are publishes).
#[derive(Debug, Default)]
struct Lanes {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// The shared, striped canonical complex table.
///
/// Same value semantics as the private [`ComplexTable`](crate::ComplexTable)
/// — tolerance bucketing on a [`BUCKET`] grid, 3×3 neighbour probe, NaN
/// sentinel for compaction-freed slots, stable indices for marked entries —
/// but the bucket maps are striped by bucket-key *row* into [`CSTRIPES`]
/// independent mutexes so publishes from different value ranges proceed in
/// parallel. [`publish`](Self::publish) is the **only** write path: both the
/// scalar and batched workspace intern routes bottom out in one call that
/// locks each needed stripe once per batch.
#[derive(Debug)]
pub(crate) struct SharedComplexTable {
    stripes: Vec<Mutex<Buckets>>,
    lanes: RwLock<Lanes>,
    /// Slots freed by [`retain_marked`](Self::retain_marked), recycled by
    /// later publishes. Freed slots hold a NaN sentinel and are absent from
    /// the buckets, so probes can never resolve to them.
    free: Mutex<Vec<u32>>,
}

fn bucket_key(value: Complex) -> (i64, i64) {
    (
        (value.re / BUCKET).round() as i64,
        (value.im / BUCKET).round() as i64,
    )
}

/// Stripe of a bucket-key row. Rows are grouped in blocks of four before
/// hashing so a probe window (three adjacent rows) usually stays within one
/// or two stripes.
fn stripe_of(kr: i64) -> usize {
    (fx_hash(&(kr >> 2)) as usize) & (CSTRIPES - 1)
}

impl SharedComplexTable {
    /// Creates a table pre-populated with the canonical constants `0` and
    /// `1` (indices [`CIdx::ZERO`] and [`CIdx::ONE`]).
    fn new() -> Self {
        let table = SharedComplexTable {
            stripes: (0..CSTRIPES)
                .map(|_| Mutex::new(Buckets::default()))
                .collect(),
            lanes: RwLock::new(Lanes {
                re: vec![0.0, 1.0],
                im: vec![0.0, 0.0],
            }),
            free: Mutex::new(Vec::new()),
        };
        for (idx, value) in [Complex::ZERO, Complex::ONE].into_iter().enumerate() {
            let (kr, ki) = bucket_key(value);
            lock(&table.stripes[stripe_of(kr)])
                .entry((kr, ki))
                .or_default()
                .push(idx as u32);
        }
        table
    }

    /// Number of value slots (live entries plus compaction-freed slots).
    pub(crate) fn len(&self) -> usize {
        read(&self.lanes).re.len()
    }

    /// Number of *live* interned values (slots minus freed slots).
    ///
    /// Lock order: `free` before `lanes`, matching [`publish`](Self::publish).
    pub(crate) fn live_len(&self) -> usize {
        let freed = lock(&self.free).len();
        read(&self.lanes).re.len() - freed
    }

    /// The raw value in slot `i` (freed slots hold a NaN sentinel).
    pub(crate) fn slot(&self, i: usize) -> Complex {
        let lanes = read(&self.lanes);
        Complex::new(lanes.re[i], lanes.im[i])
    }

    /// Appends every slot past `base + tail.len()` to `tail`, re-interleaving
    /// the SoA lanes into the tail mirror's AoS layout in one pass.
    pub(crate) fn extend_tail(&self, base: usize, tail: &mut Vec<Complex>) {
        let lanes = read(&self.lanes);
        let from = base + tail.len();
        tail.reserve(lanes.re.len().saturating_sub(from));
        for i in from..lanes.re.len() {
            tail.push(Complex::new(lanes.re[i], lanes.im[i]));
        }
    }

    /// Clones the SoA lanes for a generation snapshot.
    pub(crate) fn clone_lanes(&self) -> (Vec<f64>, Vec<f64>) {
        let lanes = read(&self.lanes);
        (lanes.re.clone(), lanes.im.clone())
    }

    /// Publishes a batch of weight values: each `(pos, value)` pair resolves
    /// to a canonical index written into `out[pos]`. This is the only shared
    /// write path — every needed stripe is locked once (ascending, so two
    /// concurrent publishes can never deadlock), then the whole batch
    /// resolves under those guards.
    pub(crate) fn publish(
        &self,
        misses: &[(usize, Complex)],
        out: &mut [CIdx],
        waits: &mut u64,
        contention_ns: &mut u64,
    ) {
        if misses.is_empty() {
            return;
        }
        // Which stripes does the batch's probe window touch? Each value
        // probes bucket rows kr-1..=kr+1; lock the stripe of every such row.
        let mut needed = [false; CSTRIPES];
        for &(_, value) in misses {
            let (kr, _) = bucket_key(value);
            for dr in -1..=1 {
                needed[stripe_of(kr + dr)] = true;
            }
        }
        let mut guards: Vec<Option<MutexGuard<'_, Buckets>>> =
            (0..CSTRIPES).map(|_| None).collect();
        for (i, need) in needed.iter().enumerate() {
            if *need {
                guards[i] = Some(lock_timed(&self.stripes[i], waits, contention_ns));
            }
        }
        // Phase 1: probe under the lanes *read* lock. The held stripes pin
        // every probe row, so a miss here stays a miss until our own write
        // phase — and a batch whose values all exist already (the common
        // case once the table is warm) never serializes readers behind the
        // lanes write lock at all.
        let mut unresolved: Vec<(usize, Complex)> = Vec::new();
        {
            let lanes = read_timed(&self.lanes, waits, contention_ns);
            for &(pos, value) in misses {
                match Self::probe_locked(&guards, &lanes, value) {
                    Some(idx) => out[pos] = idx,
                    None => unresolved.push((pos, value)),
                }
            }
        }
        if unresolved.is_empty() {
            return;
        }
        // Phase 2: append only the genuinely-new values. The full
        // probe-or-insert repeats the probe so duplicates *within* the batch
        // resolve to one slot.
        let mut free = lock_timed(&self.free, waits, contention_ns);
        let mut lanes = write_timed(&self.lanes, waits, contention_ns);
        for &(pos, value) in &unresolved {
            out[pos] = Self::lookup_locked(&mut guards, &mut free, &mut lanes, value);
        }
    }

    /// Publishes a single value (a batch of one).
    pub(crate) fn intern_one(
        &self,
        value: Complex,
        waits: &mut u64,
        contention_ns: &mut u64,
    ) -> CIdx {
        let mut out = [CIdx::ZERO];
        self.publish(&[(0, value)], &mut out, waits, contention_ns);
        out[0]
    }

    /// Probe-only half of [`lookup_locked`](Self::lookup_locked): resolves
    /// the shortcut constants and any value already interned in the locked
    /// probe window, without needing write access to the lanes.
    fn probe_locked(
        guards: &[Option<MutexGuard<'_, Buckets>>],
        lanes: &Lanes,
        value: Complex,
    ) -> Option<CIdx> {
        if value.is_zero() {
            return Some(CIdx::ZERO);
        }
        if value.is_one() {
            return Some(CIdx::ONE);
        }
        let (kr, ki) = bucket_key(value);
        for dr in -1..=1 {
            let stripe = guards[stripe_of(kr + dr)]
                .as_ref()
                .expect("probe row's stripe must be locked by publish");
            for di in -1..=1 {
                if let Some(candidates) = stripe.get(&(kr + dr, ki + di)) {
                    for &idx in candidates {
                        let slot = Complex::new(lanes.re[idx as usize], lanes.im[idx as usize]);
                        if slot.approx_eq(value) {
                            return Some(CIdx(idx));
                        }
                    }
                }
            }
        }
        None
    }

    /// Probe-or-insert under already-held guards. Identical probe order and
    /// insertion behaviour to the private table's `lookup`, so shared and
    /// private packages canonicalise identically.
    fn lookup_locked(
        guards: &mut [Option<MutexGuard<'_, Buckets>>],
        free: &mut Vec<u32>,
        lanes: &mut Lanes,
        value: Complex,
    ) -> CIdx {
        if let Some(idx) = Self::probe_locked(guards, lanes, value) {
            return idx;
        }
        let (kr, ki) = bucket_key(value);
        let idx = match free.pop() {
            Some(slot) => {
                lanes.re[slot as usize] = value.re;
                lanes.im[slot as usize] = value.im;
                slot
            }
            None => {
                let idx = lanes.re.len() as u32;
                lanes.re.push(value.re);
                lanes.im.push(value.im);
                idx
            }
        };
        guards[stripe_of(kr)]
            .as_mut()
            .expect("home stripe must be locked by publish")
            .entry((kr, ki))
            .or_default()
            .push(idx);
        CIdx(idx)
    }

    /// Compacts the table behind the GC barrier: every slot whose index is
    /// *not* marked is freed for reuse and removed from the buckets. Indices
    /// of marked entries are stable across the compaction; the canonical
    /// constants are always kept, indices beyond `marked.len()` are treated
    /// as unmarked. Returns the number of freed slots.
    pub(crate) fn retain_marked(&self, marked: &[bool]) -> usize {
        let mut guards: Vec<MutexGuard<'_, Buckets>> = self.stripes.iter().map(lock).collect();
        for stripe in guards.iter_mut() {
            stripe.clear();
        }
        let mut free = lock(&self.free);
        let mut lanes = write(&self.lanes);
        let mut freed = 0;
        for idx in 0..lanes.re.len() {
            let keep = idx <= 1 || marked.get(idx).copied().unwrap_or(false);
            if keep {
                if !lanes.re[idx].is_nan() {
                    let (kr, ki) = bucket_key(Complex::new(lanes.re[idx], lanes.im[idx]));
                    guards[stripe_of(kr)]
                        .entry((kr, ki))
                        .or_default()
                        .push(idx as u32);
                }
            } else if !lanes.re[idx].is_nan() {
                lanes.re[idx] = f64::NAN;
                lanes.im[idx] = f64::NAN;
                free.push(idx as u32);
                freed += 1;
            }
        }
        freed
    }
}

/// A unique-table entry: the canonical node id plus the workspace that first
/// interned it (for cross-thread and warm-reuse telemetry).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Interned {
    pub(crate) id: u32,
    pub(crate) owner: u32,
}

/// Roots one parked workspace publishes into the barrier so the collector
/// can mark on its behalf: protected node ids and weight indices, in-flight
/// operand edges, the workspace's identity/gate-cache edges, and the weight
/// indices its surviving memo tables reference.
#[derive(Debug, Default)]
pub(crate) struct PublishedRoots {
    pub(crate) vroots: Vec<u32>,
    pub(crate) mroots: Vec<u32>,
    pub(crate) wroots: Vec<u32>,
    pub(crate) vedges: Vec<VEdge>,
    pub(crate) medges: Vec<MEdge>,
}

/// Mutable half of the GC barrier (guarded by [`SharedStore::barrier`];
/// waiting goes through [`SharedStore::barrier_cv`]).
#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    /// Monotonic id of barrier *requests*; parked workspaces use it to
    /// detect that the round they joined ended (however it ended).
    pub(crate) request: u64,
    /// Monotonic count of *completed* collections; a parked workspace whose
    /// round advanced this re-pins the published generation on release.
    pub(crate) generation: u64,
    /// Roots of the workspaces parked in the current round (one entry per
    /// parked workspace — its length is the authoritative parked count).
    pub(crate) published: Vec<PublishedRoots>,
}

/// Aggregate telemetry of a [`SharedStore`].
///
/// Workspace-local counters (intern hits, cross-thread hits) are flushed
/// into the store when a workspace detaches, so the totals are complete once
/// a race has finished and its packages are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SharedStoreStats {
    /// Live nodes (both kinds) right now.
    pub live_nodes: usize,
    /// Highest live node count ever observed.
    pub peak_nodes: usize,
    /// Nodes ever allocated across all workspaces (unique-table misses).
    pub allocated_nodes: u64,
    /// Nodes reclaimed by shared-store collections.
    pub reclaimed_nodes: u64,
    /// Completed shared-store collections (sole-attachment and barrier).
    pub gc_runs: usize,
    /// Subset of [`gc_runs`](Self::gc_runs) that ran as safe-point barrier
    /// collections with other workspaces parked mid-race.
    pub gc_barrier_runs: usize,
    /// Live interned complex weights.
    pub complex_entries: usize,
    /// Unique-table and gate-cache lookups answered by an existing canonical
    /// entry (from any workspace, including the asking one).
    pub intern_hits: u64,
    /// Subset of `intern_hits` where the entry was created by a *different*
    /// workspace — the cross-thread sharing the store exists for.
    pub cross_thread_hits: u64,
    /// Subset of [`cross_thread_hits`](Self::cross_thread_hits) served by
    /// structure that predates the last [`SharedStore::begin_race`] mark —
    /// cross-*pair* reuse of a warm store kept alive by the batch driver.
    pub warm_hits: u64,
    /// Subset of [`warm_hits`](Self::warm_hits) served by structure interned
    /// *since* the last [`SharedStore::begin_chain`] mark — carry-over from
    /// an earlier step of the same verification chain. The remainder
    /// (`warm_hits − chain_hits`) is reuse of structure that predates the
    /// chain, i.e. batch shelf reuse. Zero outside a chain.
    pub chain_hits: u64,
    /// Hot-path lock acquisitions (unique-table shards, shared gate cache,
    /// complex-table stripes and lanes) that found the lock held and had to
    /// block.
    pub shard_lock_waits: u64,
    /// Total time spent blocked in those acquisitions, in nanoseconds.
    /// Measured only on the blocking path: uncontended acquisitions
    /// contribute zero.
    pub shard_contention_ns: u64,
    /// Full mirror/memo invalidations. Always zero under the epoch-snapshot
    /// read path (workspaces re-pin instead of invalidating); kept so older
    /// telemetry consumers see an explicit zero rather than a missing field.
    pub mirror_invalidations: u64,
    /// Times any workspace pinned a generation snapshot (one per attachment
    /// plus one per collection it crossed).
    pub epoch_pins: u64,
    /// Generation snapshots retired by collections publishing a successor.
    pub retired_generations: u64,
    /// Bytes of retired generations whose reclamation was deferred because
    /// some workspace still pinned them at publish time (a running gauge of
    /// the snapshot scheme's transient memory cost, not a live balance:
    /// deferred bytes are freed when the last pin moves on, but never
    /// subtracted here).
    pub deferred_reclaim_bytes: u64,
    /// Time threads spent stopped at GC barriers, in nanoseconds: parked
    /// workspaces' park durations plus the collector's wait for the world
    /// to park. Sums *across* threads, so it can exceed wall-clock time.
    pub barrier_wait_ns: u64,
    /// Barrier rounds abandoned because some workspace failed to reach a
    /// safe point within `BARRIER_PATIENCE`. Each deferral doubles the
    /// requesting workspace's GC threshold, so even one changes every later
    /// collection's timing.
    pub barrier_deferrals: usize,
    /// Workspaces currently attached.
    pub attached: usize,
}

impl SharedStoreStats {
    /// Fraction of canonical-store hits served by another workspace's
    /// entry, or `None` before the first hit.
    pub fn cross_thread_hit_rate(&self) -> Option<f64> {
        if self.intern_hits == 0 {
            None
        } else {
            Some(self.cross_thread_hits as f64 / self.intern_hits as f64)
        }
    }
}

/// The thread-safe shared core of a set of decision-diagram workspaces.
///
/// Create one per circuit pair (or longer-lived unit of sharing, e.g. the
/// batch driver's per-width warm stores), then attach one workspace per
/// thread with [`workspace`](Self::workspace) /
/// [`workspace_with`](Self::workspace_with). Workspaces of *different* qubit
/// counts may share a store: unique tables are sharded by node hash, not by
/// level, so a miter package and a reconstruction package with extra
/// ancillas still share their common low-level subdiagrams.
///
/// # Examples
///
/// ```
/// use dd::{gates, SharedStore};
///
/// let store = SharedStore::new();
/// let mut a = store.workspace(2);
/// let mut b = store.workspace(2);
/// let ga = a.make_gate(&gates::h(), 0, &[]);
/// let gb = b.make_gate(&gates::h(), 0, &[]);
/// // Canonical across workspaces: the same (node, weight) handle.
/// assert_eq!(ga, gb);
/// // Per-workspace telemetry flushes into the store when workspaces detach.
/// drop((a, b));
/// assert!(store.stats().cross_thread_hits > 0);
/// ```
#[derive(Debug)]
pub struct SharedStore {
    pub(crate) ctab: SharedComplexTable,
    pub(crate) vshards: Vec<Mutex<FxHashMap<VNode, Interned>>>,
    pub(crate) mshards: Vec<Mutex<FxHashMap<MNode, Interned>>>,
    pub(crate) varena: RwLock<Vec<VNode>>,
    pub(crate) marena: RwLock<Vec<MNode>>,
    pub(crate) vfree: Mutex<Vec<u32>>,
    pub(crate) mfree: Mutex<Vec<u32>>,
    /// The current generation snapshot (see the module docs). Swapped by
    /// [`publish_generation`](Self::publish_generation) behind the GC
    /// barrier; read by attaching and re-pinning workspaces.
    pub(crate) snapshot: Mutex<Arc<Generation>>,
    /// Shared gate-diagram cache (L2 behind each workspace's lossy L1).
    pub(crate) gate_cache: Mutex<FxHashMap<GateKey, (MEdge, u32)>>,
    /// Serialises attachment against collection and elects the collector:
    /// the collector holds it for the whole barrier round, so no workspace
    /// can appear (or pin a mid-sweep snapshot) mid-collection. Collection
    /// candidates only ever `try_lock` it — blocking here while another
    /// collector waits for the world to park would deadlock.
    pub(crate) gc_lock: Mutex<()>,
    /// Raised by the collector; polled by every workspace at its operation
    /// safe points (park when set).
    pub(crate) gc_requested: AtomicBool,
    pub(crate) barrier: Mutex<BarrierState>,
    pub(crate) barrier_cv: Condvar,
    pub(crate) attached: AtomicUsize,
    next_workspace: AtomicU32,
    /// Workspace ids below this mark predate the current race (see
    /// [`begin_race`](Self::begin_race)); hits on their entries count as
    /// warm hits.
    pub(crate) warm_floor: AtomicU32,
    /// Workspace ids at or above this mark (but below the warm floor) were
    /// attached by earlier steps of the current verification chain (see
    /// [`begin_chain`](Self::begin_chain)); warm hits on their entries count
    /// as chain hits. `u32::MAX` outside a chain, so nothing qualifies.
    pub(crate) chain_floor: AtomicU32,
    pub(crate) vlive: AtomicUsize,
    pub(crate) mlive: AtomicUsize,
    pub(crate) peak_nodes: AtomicUsize,
    pub(crate) allocated: AtomicU64,
    pub(crate) reclaimed: AtomicU64,
    pub(crate) gc_runs: AtomicUsize,
    pub(crate) gc_barrier_runs: AtomicUsize,
    pub(crate) intern_hits: AtomicU64,
    pub(crate) cross_thread_hits: AtomicU64,
    pub(crate) warm_hits: AtomicU64,
    pub(crate) chain_hits: AtomicU64,
    pub(crate) shard_lock_waits: AtomicU64,
    pub(crate) shard_contention_ns: AtomicU64,
    /// Pinned at zero by the epoch-snapshot read path; kept for telemetry
    /// shape stability (and for the regression test asserting it stays 0).
    pub(crate) mirror_invalidations: AtomicU64,
    pub(crate) epoch_pins: AtomicU64,
    pub(crate) retired_generations: AtomicU64,
    pub(crate) deferred_reclaim_bytes: AtomicU64,
    pub(crate) barrier_wait_ns: AtomicU64,
    pub(crate) barrier_deferrals: AtomicUsize,
}

impl SharedStore {
    /// Creates an empty shared store.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<SharedStore> {
        Arc::new(SharedStore {
            ctab: SharedComplexTable::new(),
            vshards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            mshards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            varena: RwLock::new(Vec::new()),
            marena: RwLock::new(Vec::new()),
            vfree: Mutex::new(Vec::new()),
            mfree: Mutex::new(Vec::new()),
            snapshot: Mutex::new(Arc::new(Generation {
                number: 0,
                vnodes: Vec::new(),
                mnodes: Vec::new(),
                cre: vec![0.0, 1.0],
                cim: vec![0.0, 0.0],
            })),
            gate_cache: Mutex::new(FxHashMap::default()),
            gc_lock: Mutex::new(()),
            gc_requested: AtomicBool::new(false),
            barrier: Mutex::new(BarrierState::default()),
            barrier_cv: Condvar::new(),
            attached: AtomicUsize::new(0),
            next_workspace: AtomicU32::new(0),
            warm_floor: AtomicU32::new(0),
            chain_floor: AtomicU32::new(u32::MAX),
            vlive: AtomicUsize::new(0),
            mlive: AtomicUsize::new(0),
            peak_nodes: AtomicUsize::new(0),
            allocated: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            gc_runs: AtomicUsize::new(0),
            gc_barrier_runs: AtomicUsize::new(0),
            intern_hits: AtomicU64::new(0),
            cross_thread_hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            chain_hits: AtomicU64::new(0),
            shard_lock_waits: AtomicU64::new(0),
            shard_contention_ns: AtomicU64::new(0),
            mirror_invalidations: AtomicU64::new(0),
            epoch_pins: AtomicU64::new(0),
            retired_generations: AtomicU64::new(0),
            deferred_reclaim_bytes: AtomicU64::new(0),
            barrier_wait_ns: AtomicU64::new(0),
            barrier_deferrals: AtomicUsize::new(0),
        })
    }

    /// Attaches an unbudgeted workspace over `n_qubits` qubits.
    pub fn workspace(self: &Arc<Self>, n_qubits: usize) -> DdPackage {
        self.workspace_with(n_qubits, Budget::unlimited(), MemoryConfig::default())
    }

    /// Attaches a workspace with an explicit budget and memory configuration.
    ///
    /// The workspace's lossy compute caches are sized by `config` as usual;
    /// when its automatic-GC threshold trips mid-race, it requests a
    /// safe-point barrier collection (see the module docs).
    pub fn workspace_with(
        self: &Arc<Self>,
        n_qubits: usize,
        budget: Budget,
        config: MemoryConfig,
    ) -> DdPackage {
        DdPackage::attached(self, n_qubits, budget, config)
    }

    /// Marks a race boundary for warm-reuse telemetry: canonical hits on
    /// structure interned *before* this call are counted as
    /// [`SharedStoreStats::warm_hits`] by workspaces attached after it.
    ///
    /// The batch driver calls this when handing a pooled store to the next
    /// circuit pair; on a fresh store the call is a no-op (nothing predates
    /// it).
    pub fn begin_race(&self) {
        self.warm_floor.store(
            self.next_workspace.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Marks the start of a verification *chain*: until
    /// [`end_chain`](Self::end_chain), warm hits on structure interned after
    /// this call (i.e. by an earlier step of the same chain, once
    /// [`begin_race`](Self::begin_race) has advanced past it) are counted as
    /// [`SharedStoreStats::chain_hits`], separating chain carry-over from
    /// reuse of structure the store held before the chain began (batch shelf
    /// reuse).
    pub fn begin_chain(&self) {
        self.chain_floor.store(
            self.next_workspace.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Ends the chain started by [`begin_chain`](Self::begin_chain): later
    /// warm hits count as plain shelf reuse again. Accumulated
    /// [`SharedStoreStats::chain_hits`] are kept (counters are cumulative).
    pub fn end_chain(&self) {
        self.chain_floor.store(u32::MAX, Ordering::Relaxed);
    }

    /// Number of workspaces currently attached.
    pub fn attached_workspaces(&self) -> usize {
        self.attached.load(Ordering::Acquire)
    }

    /// Live nodes across both arenas.
    pub(crate) fn live_nodes(&self) -> usize {
        self.vlive.load(Ordering::Relaxed) + self.mlive.load(Ordering::Relaxed)
    }

    /// The generation snapshot workspaces pin for lock-free reads.
    pub(crate) fn current_generation(&self) -> Arc<Generation> {
        Arc::clone(&lock(&self.snapshot))
    }

    /// Publishes a fresh generation snapshot of the given (post-sweep) arena
    /// contents and the current complex-table lanes, retiring the previous
    /// one. Called by the collector while it still holds the arena write
    /// locks, so the snapshot is consistent by construction.
    ///
    /// Reclamation of the retired generation is *deferred*: dropping the
    /// store's reference frees it only once the last workspace still pinning
    /// it re-pins or detaches; until then its footprint is accounted in
    /// [`SharedStoreStats::deferred_reclaim_bytes`].
    pub(crate) fn publish_generation(&self, vnodes: &[VNode], mnodes: &[MNode]) {
        let (cre, cim) = self.ctab.clone_lanes();
        let mut slot = lock(&self.snapshot);
        let next = Arc::new(Generation {
            number: slot.number + 1,
            vnodes: vnodes.to_vec(),
            mnodes: mnodes.to_vec(),
            cre,
            cim,
        });
        let old = std::mem::replace(&mut *slot, next);
        drop(slot);
        self.retired_generations.fetch_add(1, Ordering::Relaxed);
        obs::metrics::add(obs::metrics::DD_RETIRED_GENERATIONS, 1);
        if Arc::strong_count(&old) > 1 {
            let bytes = old.bytes();
            self.deferred_reclaim_bytes
                .fetch_add(bytes, Ordering::Relaxed);
            obs::metrics::add(obs::metrics::DD_DEFERRED_RECLAIM_BYTES, bytes);
        }
    }

    /// Aggregate telemetry (see [`SharedStoreStats`]).
    pub fn stats(&self) -> SharedStoreStats {
        SharedStoreStats {
            live_nodes: self.live_nodes(),
            peak_nodes: self.peak_nodes.load(Ordering::Relaxed),
            allocated_nodes: self.allocated.load(Ordering::Relaxed),
            reclaimed_nodes: self.reclaimed.load(Ordering::Relaxed),
            gc_runs: self.gc_runs.load(Ordering::Relaxed),
            gc_barrier_runs: self.gc_barrier_runs.load(Ordering::Relaxed),
            complex_entries: self.ctab.live_len(),
            intern_hits: self.intern_hits.load(Ordering::Relaxed),
            cross_thread_hits: self.cross_thread_hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            chain_hits: self.chain_hits.load(Ordering::Relaxed),
            shard_lock_waits: self.shard_lock_waits.load(Ordering::Relaxed),
            shard_contention_ns: self.shard_contention_ns.load(Ordering::Relaxed),
            mirror_invalidations: self.mirror_invalidations.load(Ordering::Relaxed),
            epoch_pins: self.epoch_pins.load(Ordering::Relaxed),
            retired_generations: self.retired_generations.load(Ordering::Relaxed),
            deferred_reclaim_bytes: self.deferred_reclaim_bytes.load(Ordering::Relaxed),
            barrier_wait_ns: self.barrier_wait_ns.load(Ordering::Relaxed),
            barrier_deferrals: self.barrier_deferrals.load(Ordering::Relaxed),
            attached: self.attached.load(Ordering::Acquire),
        }
    }
}

/// The package-side handle of one attachment: the pinned generation, epoch
/// tails and overlays, memos and telemetry.
///
/// Tails and overlays are `RefCell`s because diagram *reads* (`vnode`,
/// weight lookups) happen behind `&self` package methods; the package itself
/// is `Send` but not `Sync`, which is exactly the one-workspace-per-thread
/// contract. Reads of structure older than the pin never touch them.
#[derive(Debug)]
pub(crate) struct SharedHandle {
    pub(crate) store: Arc<SharedStore>,
    pub(crate) ws_id: u32,
    /// Snapshot of the store's warm floor at attach time: entries owned by
    /// workspaces below it predate this race.
    warm_floor: u32,
    /// Snapshot of the store's chain floor at attach time: entries owned by
    /// workspaces at or above it (but below the warm floor) were interned by
    /// an earlier step of the current chain.
    chain_floor: u32,
    /// The pinned generation: all reads below its lengths are lock-free.
    pin: Arc<Generation>,
    /// Epoch tails: copies of arena/lane slots allocated *after* the pin
    /// (index ≥ the pinned length), refilled in bulk under the read locks.
    vtail: RefCell<Vec<VNode>>,
    mtail: RefCell<Vec<MNode>>,
    ctail: RefCell<Vec<Complex>>,
    /// Epoch overlays: pinned-range slots that were on the free lists at
    /// publish time (sentinels in the snapshot) and were recycled by an
    /// allocation this epoch. A slot recycles at most once per epoch, so a
    /// cached entry stays valid until the next re-pin.
    voverlay: RefCell<FxHashMap<u32, VNode>>,
    moverlay: RefCell<FxHashMap<u32, MNode>>,
    coverlay: RefCell<FxHashMap<u32, Complex>>,
    mul_memo: LossyCache<(CIdx, CIdx), CIdx>,
    add_memo: LossyCache<(CIdx, CIdx), CIdx>,
    div_memo: LossyCache<(CIdx, CIdx), CIdx>,
    /// Exact-bits memo for raw value interning: identical bit patterns must
    /// map to the canonical index, so memoising on bits is loss-free.
    bits_memo: LossyCache<(u64, u64), CIdx>,
    pub(crate) intern_hits: u64,
    pub(crate) cross_thread_hits: u64,
    pub(crate) warm_hits: u64,
    pub(crate) chain_hits: u64,
    /// Hot-path lock acquisitions that had to block (see `lock_timed`).
    shard_lock_waits: u64,
    /// Nanoseconds spent blocked in those acquisitions.
    shard_contention_ns: u64,
    /// Generation pins taken (one at attach plus one per re-pin).
    epoch_pins: u64,
}

/// log2 slots of the weight-arithmetic memo caches.
const MEMO_BITS: u32 = 14;

impl SharedHandle {
    pub(crate) fn new(store: &Arc<SharedStore>) -> Self {
        // Attachment synchronises with collection: once this increment is
        // visible (under the gc_lock), no barrier round can start or finish
        // without counting us, and the pinned generation cannot be mid-swap.
        // A panicking sibling may have poisoned the lock; the guarded data
        // is just the collector election, so recover.
        let _guard = lock(&store.gc_lock);
        store.attached.fetch_add(1, Ordering::AcqRel);
        store.epoch_pins.fetch_add(1, Ordering::Relaxed);
        SharedHandle {
            store: Arc::clone(store),
            ws_id: store.next_workspace.fetch_add(1, Ordering::Relaxed),
            warm_floor: store.warm_floor.load(Ordering::Relaxed),
            chain_floor: store.chain_floor.load(Ordering::Relaxed),
            pin: store.current_generation(),
            vtail: RefCell::new(Vec::new()),
            mtail: RefCell::new(Vec::new()),
            ctail: RefCell::new(Vec::new()),
            voverlay: RefCell::new(FxHashMap::default()),
            moverlay: RefCell::new(FxHashMap::default()),
            coverlay: RefCell::new(FxHashMap::default()),
            mul_memo: LossyCache::new("shared_mul", MEMO_BITS),
            add_memo: LossyCache::new("shared_add", MEMO_BITS),
            div_memo: LossyCache::new("shared_div", MEMO_BITS),
            bits_memo: LossyCache::new("shared_intern", MEMO_BITS),
            intern_hits: 0,
            cross_thread_hits: 0,
            warm_hits: 0,
            chain_hits: 0,
            shard_lock_waits: 0,
            shard_contention_ns: 0,
            epoch_pins: 1,
        }
    }

    /// Records a canonical hit on `owner`'s entry for telemetry.
    #[inline]
    fn note_hit(&mut self, owner: u32) {
        self.intern_hits += 1;
        if owner != self.ws_id {
            self.cross_thread_hits += 1;
            if owner < self.warm_floor {
                self.warm_hits += 1;
                if owner >= self.chain_floor {
                    self.chain_hits += 1;
                }
            }
        }
    }

    /// Re-pins the current generation after a collection: swaps the
    /// snapshot and drops the epoch tails/overlays (now folded into the new
    /// snapshot). The weight-arithmetic memos survive — their indices were
    /// published as GC roots, and compaction keeps marked indices stable.
    /// No-op when no new generation was published (e.g. an aborted round).
    pub(crate) fn repin(&mut self) {
        let current = self.store.current_generation();
        if Arc::ptr_eq(&current, &self.pin) {
            return;
        }
        self.pin = current;
        self.epoch_pins += 1;
        self.vtail.borrow_mut().clear();
        self.mtail.borrow_mut().clear();
        self.ctail.borrow_mut().clear();
        self.voverlay.borrow_mut().clear();
        self.moverlay.borrow_mut().clear();
        self.coverlay.borrow_mut().clear();
    }

    /// Weight indices the surviving memo tables reference; published as GC
    /// roots so compaction cannot free (and later recycle) a slot a memo
    /// entry would still resolve to.
    pub(crate) fn memo_weight_roots(&self) -> Vec<u32> {
        let mut roots = Vec::new();
        {
            let mut push = |idx: CIdx| {
                if !idx.is_zero() && !idx.is_one() {
                    roots.push(idx.0);
                }
            };
            for &((a, b), r) in self.mul_memo.entries() {
                push(a);
                push(b);
                push(r);
            }
            for &((a, b), r) in self.add_memo.entries() {
                push(a);
                push(b);
                push(r);
            }
            for &((a, b), r) in self.div_memo.entries() {
                push(a);
                push(b);
                push(r);
            }
            for &(_, r) in self.bits_memo.entries() {
                push(r);
            }
        }
        roots
    }

    // ------------------------------------------------------------------
    // Node reads (pinned snapshot first, epoch tail/overlay second)
    // ------------------------------------------------------------------

    pub(crate) fn vnode(&self, id: NodeId) -> VNode {
        let idx = id.index();
        let pinned = &self.pin.vnodes;
        if idx < pinned.len() {
            let node = pinned[idx];
            if !node.is_free() {
                return node;
            }
            // On the free list at publish time; may have been recycled by an
            // allocation this epoch. A slot recycles at most once per epoch,
            // so a cached overlay entry stays valid until the next re-pin.
            if let Some(&node) = self.voverlay.borrow().get(&(idx as u32)) {
                return node;
            }
            let node = read(&self.store.varena)[idx];
            if !node.is_free() {
                self.voverlay.borrow_mut().insert(idx as u32, node);
            }
            return node;
        }
        let base = pinned.len();
        let off = idx - base;
        {
            let tail = self.vtail.borrow();
            if off < tail.len() {
                let node = tail[off];
                if !node.is_free() {
                    return node;
                }
            }
        }
        let mut tail = self.vtail.borrow_mut();
        let arena = read(&self.store.varena);
        let len = tail.len();
        if off < len {
            tail[off] = arena[idx];
        } else {
            tail.extend_from_slice(&arena[base + len..]);
        }
        tail[off]
    }

    pub(crate) fn mnode(&self, id: NodeId) -> MNode {
        let idx = id.index();
        let pinned = &self.pin.mnodes;
        if idx < pinned.len() {
            let node = pinned[idx];
            if !node.is_free() {
                return node;
            }
            if let Some(&node) = self.moverlay.borrow().get(&(idx as u32)) {
                return node;
            }
            let node = read(&self.store.marena)[idx];
            if !node.is_free() {
                self.moverlay.borrow_mut().insert(idx as u32, node);
            }
            return node;
        }
        let base = pinned.len();
        let off = idx - base;
        {
            let tail = self.mtail.borrow();
            if off < tail.len() {
                let node = tail[off];
                if !node.is_free() {
                    return node;
                }
            }
        }
        let mut tail = self.mtail.borrow_mut();
        let arena = read(&self.store.marena);
        let len = tail.len();
        if off < len {
            tail[off] = arena[idx];
        } else {
            tail.extend_from_slice(&arena[base + len..]);
        }
        tail[off]
    }

    // ------------------------------------------------------------------
    // Complex weights
    // ------------------------------------------------------------------

    pub(crate) fn value(&self, idx: CIdx) -> Complex {
        let i = idx.index();
        let base = self.pin.cre.len();
        if i < base {
            let v = Complex::new(self.pin.cre[i], self.pin.cim[i]);
            // NaN marks a slot freed at publish time (possibly recycled
            // since by a publish this epoch).
            if !v.re.is_nan() {
                return v;
            }
            if let Some(&v) = self.coverlay.borrow().get(&(i as u32)) {
                return v;
            }
            let v = self.store.ctab.slot(i);
            if !v.re.is_nan() {
                self.coverlay.borrow_mut().insert(i as u32, v);
            }
            return v;
        }
        let off = i - base;
        {
            let tail = self.ctail.borrow();
            if off < tail.len() {
                let v = tail[off];
                if !v.re.is_nan() {
                    return v;
                }
            }
        }
        let mut tail = self.ctail.borrow_mut();
        if off < tail.len() {
            tail[off] = self.store.ctab.slot(i);
        } else {
            self.store.ctab.extend_tail(base, &mut tail);
        }
        tail[off]
    }

    pub(crate) fn intern(&mut self, value: Complex) -> CIdx {
        if value.is_zero() {
            return CIdx::ZERO;
        }
        if value.is_one() {
            return CIdx::ONE;
        }
        let key = (value.re.to_bits(), value.im.to_bits());
        if let Some(idx) = self.bits_memo.get(&key) {
            return idx;
        }
        let idx = self.store.ctab.intern_one(
            value,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        );
        self.bits_memo.insert(key, idx);
        idx
    }

    /// Interns a whole slice of values, appending one `CIdx` per value to
    /// `out` — same sequence the scalar [`intern`](Self::intern) loop would
    /// produce, but all memo misses are published under **one** striped-lock
    /// acquisition instead of one per weight, so a dense terminal-case
    /// rebuild charges each stripe lock once per block.
    pub(crate) fn intern_batch(&mut self, values: &[Complex], out: &mut Vec<CIdx>) {
        out.reserve(values.len());
        let base = out.len();
        // Pass 1: resolve shortcuts and memo hits without touching a lock;
        // remember the positions that missed.
        let mut misses: Vec<(usize, Complex)> = Vec::new();
        for &value in values {
            if value.is_zero() {
                out.push(CIdx::ZERO);
                continue;
            }
            if value.is_one() {
                out.push(CIdx::ONE);
                continue;
            }
            let key = (value.re.to_bits(), value.im.to_bits());
            if let Some(idx) = self.bits_memo.get(&key) {
                out.push(idx);
            } else {
                misses.push((out.len(), value));
                out.push(CIdx::ZERO); // placeholder, patched below
            }
        }
        // Pass 2: one publish resolves every miss, in order.
        if !misses.is_empty() {
            self.store.ctab.publish(
                &misses,
                &mut out[..],
                &mut self.shard_lock_waits,
                &mut self.shard_contention_ns,
            );
            for &(pos, value) in &misses {
                self.bits_memo
                    .insert((value.re.to_bits(), value.im.to_bits()), out[pos]);
            }
        }
        debug_assert_eq!(out.len() - base, values.len());
        obs::metrics::add(obs::metrics::DD_BATCH_INTERNED, values.len() as u64);
    }

    pub(crate) fn mul(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() || b.is_zero() {
            return CIdx::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        if let Some(idx) = self.mul_memo.get(&(a, b)) {
            return idx;
        }
        let product = self.value(a) * self.value(b);
        let idx = self.intern(product);
        self.mul_memo.insert((a, b), idx);
        idx
    }

    pub(crate) fn add(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if let Some(idx) = self.add_memo.get(&(a, b)) {
            return idx;
        }
        let sum = self.value(a) + self.value(b);
        let idx = self.intern(sum);
        self.add_memo.insert((a, b), idx);
        idx
    }

    pub(crate) fn div(&mut self, a: CIdx, b: CIdx) -> CIdx {
        debug_assert!(!b.is_zero(), "division of interned values by zero");
        if a.is_zero() {
            return CIdx::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if let Some(idx) = self.div_memo.get(&(a, b)) {
            return idx;
        }
        let quotient = self.value(a) / self.value(b);
        let idx = self.intern(quotient);
        self.div_memo.insert((a, b), idx);
        idx
    }

    pub(crate) fn conj(&mut self, a: CIdx) -> CIdx {
        if a.is_zero() || a.is_one() {
            return a;
        }
        let conj = self.value(a).conj();
        self.intern(conj)
    }

    // ------------------------------------------------------------------
    // Node interning (sharded unique tables)
    // ------------------------------------------------------------------

    /// Records a freshly interned node in this workspace's epoch-local view
    /// so the immediately following reads don't need the arena lock.
    fn note_own_vnode(&self, id: u32, node: VNode) {
        let idx = id as usize;
        let pinned = self.pin.vnodes.len();
        if idx < pinned {
            self.voverlay.borrow_mut().insert(id, node);
        } else {
            let mut tail = self.vtail.borrow_mut();
            let off = idx - pinned;
            if off < tail.len() {
                tail[off] = node;
            } else if off == tail.len() {
                tail.push(node);
            }
        }
    }

    fn note_own_mnode(&self, id: u32, node: MNode) {
        let idx = id as usize;
        let pinned = self.pin.mnodes.len();
        if idx < pinned {
            self.moverlay.borrow_mut().insert(id, node);
        } else {
            let mut tail = self.mtail.borrow_mut();
            let off = idx - pinned;
            if off < tail.len() {
                tail[off] = node;
            } else if off == tail.len() {
                tail.push(node);
            }
        }
    }

    /// Interns a vector node; returns the canonical id and whether it was
    /// freshly allocated by this call.
    ///
    /// The arena slot is allocated with **no shard lock held**: nesting the
    /// global arena write lock (and its Vec-doubling memcpys) inside a shard
    /// critical section convoys every other shard behind one allocation. The
    /// price is a double-checked second probe; losing that race leaks the
    /// slot until the next sweep, where it is unreachable (never published
    /// to a map, never handed out as an id) and reclaimed like any other
    /// garbage. Slots still recycle at most once per epoch — a leaked slot
    /// is written once and never re-freed mid-epoch.
    pub(crate) fn intern_vnode(&mut self, node: VNode) -> (NodeId, bool) {
        let hash = fx_hash(&node);
        let shard = &self.store.vshards[(hash as usize) & (SHARDS - 1)];
        {
            let map = lock_timed(
                shard,
                &mut self.shard_lock_waits,
                &mut self.shard_contention_ns,
            );
            if let Some(found) = map.get(&node) {
                let owner = found.owner;
                let id = found.id;
                drop(map);
                self.note_hit(owner);
                return (NodeId(id), false);
            }
        }
        let id = {
            let slot = lock(&self.store.vfree).pop();
            let mut arena = write(&self.store.varena);
            match slot {
                Some(slot) => {
                    arena[slot as usize] = node;
                    slot
                }
                None => {
                    arena.push(node);
                    (arena.len() - 1) as u32
                }
            }
        };
        let mut map = lock_timed(
            shard,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        );
        if let Some(found) = map.get(&node) {
            let owner = found.owner;
            let winner = found.id;
            drop(map);
            self.note_hit(owner);
            return (NodeId(winner), false);
        }
        map.insert(
            node,
            Interned {
                id,
                owner: self.ws_id,
            },
        );
        drop(map);
        self.note_allocation(
            self.store.vlive.fetch_add(1, Ordering::Relaxed)
                + 1
                + self.store.mlive.load(Ordering::Relaxed),
        );
        self.note_own_vnode(id, node);
        (NodeId(id), true)
    }

    /// Interns a matrix node; see [`intern_vnode`](Self::intern_vnode) for
    /// the double-checked allocate-outside-the-shard-lock protocol.
    pub(crate) fn intern_mnode(&mut self, node: MNode) -> (NodeId, bool) {
        let hash = fx_hash(&node);
        let shard = &self.store.mshards[(hash as usize) & (SHARDS - 1)];
        {
            let map = lock_timed(
                shard,
                &mut self.shard_lock_waits,
                &mut self.shard_contention_ns,
            );
            if let Some(found) = map.get(&node) {
                let owner = found.owner;
                let id = found.id;
                drop(map);
                self.note_hit(owner);
                return (NodeId(id), false);
            }
        }
        let id = {
            let slot = lock(&self.store.mfree).pop();
            let mut arena = write(&self.store.marena);
            match slot {
                Some(slot) => {
                    arena[slot as usize] = node;
                    slot
                }
                None => {
                    arena.push(node);
                    (arena.len() - 1) as u32
                }
            }
        };
        let mut map = lock_timed(
            shard,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        );
        if let Some(found) = map.get(&node) {
            let owner = found.owner;
            let winner = found.id;
            drop(map);
            self.note_hit(owner);
            return (NodeId(winner), false);
        }
        map.insert(
            node,
            Interned {
                id,
                owner: self.ws_id,
            },
        );
        drop(map);
        self.note_allocation(
            self.store.mlive.fetch_add(1, Ordering::Relaxed)
                + 1
                + self.store.vlive.load(Ordering::Relaxed),
        );
        self.note_own_mnode(id, node);
        (NodeId(id), true)
    }

    fn note_allocation(&self, live: usize) {
        self.store.allocated.fetch_add(1, Ordering::Relaxed);
        self.store.peak_nodes.fetch_max(live, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Shared gate cache (L2)
    // ------------------------------------------------------------------

    pub(crate) fn gate_get(&mut self, key: &GateKey) -> Option<MEdge> {
        let map = lock_timed(
            &self.store.gate_cache,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        );
        let (edge, owner) = map.get(key)?;
        let (edge, owner) = (*edge, *owner);
        drop(map);
        self.note_hit(owner);
        Some(edge)
    }

    pub(crate) fn gate_insert(&mut self, key: GateKey, edge: MEdge) {
        lock_timed(
            &self.store.gate_cache,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        )
        .entry(key)
        .or_insert((edge, self.ws_id));
    }
}

impl Drop for SharedHandle {
    fn drop(&mut self) {
        // Flush local telemetry so SharedStore::stats() is complete once a
        // race's workspaces are gone, then detach. A pending barrier may be
        // waiting for this workspace: the detach shrinks the parked quorum,
        // so wake the collector to re-count. Dropping `pin` here is what
        // releases this workspace's share of any retired generation.
        self.store
            .intern_hits
            .fetch_add(self.intern_hits, Ordering::Relaxed);
        self.store
            .cross_thread_hits
            .fetch_add(self.cross_thread_hits, Ordering::Relaxed);
        self.store
            .warm_hits
            .fetch_add(self.warm_hits, Ordering::Relaxed);
        self.store
            .chain_hits
            .fetch_add(self.chain_hits, Ordering::Relaxed);
        self.store
            .shard_lock_waits
            .fetch_add(self.shard_lock_waits, Ordering::Relaxed);
        self.store
            .shard_contention_ns
            .fetch_add(self.shard_contention_ns, Ordering::Relaxed);
        // epoch_pins counts the attach pin once (added at attach) plus the
        // re-pins accumulated since.
        self.store
            .epoch_pins
            .fetch_add(self.epoch_pins - 1, Ordering::Relaxed);
        obs::metrics::add(obs::metrics::DD_UNIQUE_HITS, self.intern_hits);
        obs::metrics::add(obs::metrics::DD_CROSS_THREAD_HITS, self.cross_thread_hits);
        obs::metrics::add(obs::metrics::DD_SHARD_WAITS, self.shard_lock_waits);
        obs::metrics::add(
            obs::metrics::DD_SHARD_CONTENTION_NS,
            self.shard_contention_ns,
        );
        obs::metrics::add(obs::metrics::DD_EPOCH_PINS, self.epoch_pins);
        self.store.attached.fetch_sub(1, Ordering::AcqRel);
        if self.store.gc_requested.load(Ordering::Acquire) {
            let _barrier = lock(&self.store.barrier);
            self.store.barrier_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn attach_recovers_from_a_poisoned_gc_lock() {
        // A scheme thread that panics while holding the gc_lock (e.g. mid
        // attach) poisons it; later attaches and detaches must recover
        // instead of cascading the panic through the whole portfolio.
        let store = SharedStore::new();
        let poisoner = Arc::clone(&store);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.gc_lock.lock().unwrap();
            panic!("scheme died while attached");
        }));
        assert!(store.gc_lock.is_poisoned(), "test setup: lock not poisoned");

        let mut workspace = store.workspace(2);
        let gate = workspace.make_gate(&gates::h(), 0, &[]);
        assert!(!gate.is_zero());
        drop(workspace);
        assert_eq!(store.stats().attached, 0);

        // Collection still works on the recovered lock.
        let mut collector = store.workspace(2);
        collector.garbage_collect();
        let rebuilt = collector.make_gate(&gates::h(), 0, &[]);
        assert_eq!(rebuilt, gate, "canonicity lost across poison recovery");
    }

    #[test]
    fn warm_hits_count_reuse_of_pre_race_structure() {
        let store = SharedStore::new();
        let mut first = store.workspace(3);
        let gate = first.make_gate(&gates::h(), 1, &[]);
        drop(first);
        assert_eq!(store.stats().warm_hits, 0, "same race: nothing is warm");

        store.begin_race();
        let mut second = store.workspace(3);
        assert_eq!(second.make_gate(&gates::h(), 1, &[]), gate);
        drop(second);
        let stats = store.stats();
        assert!(
            stats.warm_hits > 0,
            "reuse across begin_race must count as warm: {stats:?}"
        );
        assert!(stats.warm_hits <= stats.cross_thread_hits);
    }

    #[test]
    fn chain_hits_split_chain_carry_over_from_shelf_reuse() {
        // Shelf structure: built before the chain begins.
        let store = SharedStore::new();
        let mut shelf = store.workspace(3);
        let shelf_gate = shelf.make_gate(&gates::h(), 0, &[]);
        drop(shelf);

        // Chain step 1 builds fresh structure on top of the shelf.
        store.begin_chain();
        store.begin_race();
        let mut step1 = store.workspace(3);
        assert_eq!(step1.make_gate(&gates::h(), 0, &[]), shelf_gate);
        let step_gate = step1.make_gate(&gates::x(), 1, &[]);
        drop(step1);
        let after_step1 = store.stats();
        assert!(after_step1.warm_hits > 0, "shelf reuse must be warm");
        assert_eq!(
            after_step1.chain_hits, 0,
            "step 1 can only reuse pre-chain structure: {after_step1:?}"
        );

        // Chain step 2 reuses both shelf and step-1 structure; only the
        // latter counts as chain carry-over.
        store.begin_race();
        let mut step2 = store.workspace(3);
        assert_eq!(step2.make_gate(&gates::h(), 0, &[]), shelf_gate);
        assert_eq!(step2.make_gate(&gates::x(), 1, &[]), step_gate);
        drop(step2);
        let after_step2 = store.stats();
        assert!(
            after_step2.chain_hits > after_step1.chain_hits,
            "step-1 structure reused in step 2 must count as chain carry-over: {after_step2:?}"
        );
        assert!(after_step2.chain_hits <= after_step2.warm_hits);

        // After the chain ends, reuse counts as shelf again.
        store.end_chain();
        store.begin_race();
        let mut later = store.workspace(3);
        assert_eq!(later.make_gate(&gates::x(), 1, &[]), step_gate);
        drop(later);
        let final_stats = store.stats();
        assert_eq!(
            final_stats.chain_hits, after_step2.chain_hits,
            "chain hits must not grow outside a chain: {final_stats:?}"
        );
    }

    #[test]
    fn striped_interning_merges_within_tolerance_across_batches() {
        // The striped table must canonicalise exactly like the private one:
        // values within tolerance merge even across the scalar and batched
        // publish routes, and the constants keep their reserved indices.
        let store = SharedStore::new();
        let mut waits = 0;
        let mut ns = 0;
        let a = store
            .ctab
            .intern_one(Complex::new(0.5, -0.25), &mut waits, &mut ns);
        let mut out = Vec::new();
        let values = [
            Complex::ZERO,
            Complex::ONE,
            Complex::new(0.5 + 1e-14, -0.25),
            Complex::new(0.5, -0.25 + 0.4 * TOLERANCE),
            Complex::new(-0.5, 0.25),
        ];
        out.resize(values.len(), CIdx::ZERO);
        let misses: Vec<(usize, Complex)> = values.iter().copied().enumerate().collect();
        store.ctab.publish(&misses, &mut out, &mut waits, &mut ns);
        assert_eq!(out[0], CIdx::ZERO);
        assert_eq!(out[1], CIdx::ONE);
        assert_eq!(out[2], a, "within-tolerance value must merge");
        assert_eq!(out[3], a, "near-boundary value must merge");
        assert_ne!(out[4], a, "distinct value must get a fresh index");
        assert_eq!(store.ctab.live_len(), 4); // 0, 1, a, -a
    }

    #[test]
    fn retain_marked_keeps_indices_stable_and_recycles_free_slots() {
        let store = SharedStore::new();
        let mut waits = 0;
        let mut ns = 0;
        let keep = store
            .ctab
            .intern_one(Complex::new(0.25, 0.0), &mut waits, &mut ns);
        let dead = store
            .ctab
            .intern_one(Complex::new(0.75, 0.0), &mut waits, &mut ns);
        let mut marked = vec![false; store.ctab.len()];
        marked[keep.index()] = true;
        assert_eq!(store.ctab.retain_marked(&marked), 1);
        // The kept index is stable; the dead slot is a NaN sentinel.
        assert!(store
            .ctab
            .slot(keep.index())
            .approx_eq(Complex::new(0.25, 0.0)));
        assert!(store.ctab.slot(dead.index()).re.is_nan());
        // The freed slot is recycled by the next publish.
        let recycled = store
            .ctab
            .intern_one(Complex::new(0.125, 0.5), &mut waits, &mut ns);
        assert_eq!(recycled, dead);
        // And the kept value still resolves to its old index.
        assert_eq!(
            store
                .ctab
                .intern_one(Complex::new(0.25, 0.0), &mut waits, &mut ns),
            keep
        );
    }
}
