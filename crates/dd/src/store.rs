//! Thread-safe shared decision-diagram core for portfolio racing.
//!
//! A [`SharedStore`] is the *canonicity-preserving* half of a
//! [`DdPackage`](crate::DdPackage) split out so that several packages — one
//! per racing thread — can intern into the same node space. It owns
//!
//! * the canonical [`ComplexTable`] (one mutex: interning is rare relative
//!   to weight *reads*, which go through per-workspace mirrors and memos),
//! * the vector/matrix unique tables, sharded by node hash into
//!   [`SHARDS`] independently locked maps,
//! * the node arenas behind reader/writer locks (readers are per-workspace
//!   mirrors filling in bulk; writers append on interning misses; slots are
//!   only recycled behind the GC barrier),
//! * the shared gate-diagram cache (an L2 behind every workspace's lossy L1),
//! * the free lists, the GC barrier and telemetry counters.
//!
//! The per-thread half stays inside `DdPackage`: lossy compute caches (they
//! are overwrite-on-collision, so thread-local is both correct and
//! lock-free), `Budget`/`CancelToken`, protection roots and `MemoryStats`.
//! [`SharedHandle`] is the glue a package holds when attached: read mirrors
//! of the arenas and the complex table (lock-free after first touch, valid
//! because arenas only recycle slots behind the barrier every workspace
//! passes), plus thread-local memo caches for weight arithmetic keyed on
//! canonical [`CIdx`] pairs so repeated products never touch the complex
//! mutex.
//!
//! # Canonicity across threads
//!
//! Node normalisation is a deterministic function of canonical inputs: equal
//! child edges produce bit-identical weights, the complex mutex linearises
//! tolerance merging, and each shard mutex linearises node interning — so
//! two threads constructing the same subdiagram always end up with the
//! *same* `(NodeId, CIdx)` edge. That is what turns the portfolio's
//! duplicated work into cross-thread cache hits.
//!
//! # Garbage collection: the safe-point barrier
//!
//! Collection on a shared store is a **stop-the-world barrier** that runs
//! *mid-race* (it replaced the PR-3 protocol of deferring collection until a
//! sole workspace remained, which let miter-heavy races outgrow memory):
//!
//! 1. A workspace whose GC threshold trips elects itself the collector by
//!    `try_lock`ing [`SharedStore::gc_lock`] (never blocking — a blocked
//!    election would deadlock against a collector waiting for parkers). It
//!    raises `gc_requested` and waits.
//! 2. Every other attached workspace polls `gc_requested` at its operation
//!    safe points (the entries of `apply`/`mul`/`add`/`transpose`, the same
//!    places automatic collection triggers) and **parks**: it publishes its
//!    roots — protected edges, in-flight operands, identity and local gate
//!    caches — into the store's barrier state and blocks.
//! 3. Once all other attachments are parked (detaching also counts — a
//!    finished scheme's workspace simply leaves), the collector sweeps from
//!    *all* published roots plus its own plus the shared gate cache,
//!    rebuilds the sharded unique tables, compacts the [`ComplexTable`] and
//!    releases the barrier. Parked workspaces wake, invalidate their
//!    mirrors and memo caches (slots may now be recycled under the same
//!    ids) and continue; protected edges keep their node ids, so parked
//!    diagrams stay pointer-identical across the collection.
//!
//! An attached workspace that never reaches a safe point (idle, or stuck in
//! one very long operation) would stall the world, so the collector gives up
//! after a bounded patience and falls back to the old deferral semantics
//! (nothing is reclaimed, the caller's threshold backs off). Attachment
//! takes `gc_lock` too, so no workspace can appear mid-sweep; workspaces
//! attaching later start with empty mirrors and can never observe a stale
//! slot.
//!
//! # Warm reuse across races
//!
//! A store may outlive a race: the batch driver keeps one store per register
//! width alive across circuit pairs, running a barrier collection between
//! pairs so only the gate-diagram cache (a GC root) and the canonical nodes
//! under it carry over. [`SharedStore::begin_race`] marks the boundary;
//! canonical hits on structure that predates the mark are counted as
//! [`SharedStoreStats::warm_hits`] — the cross-*pair* sharing the pool
//! exists for.
//!
//! # Lock poisoning
//!
//! Store locks guard data that is consistent at every panic point (critical
//! sections only move `Copy` values between already-validated structures),
//! so a racing scheme that panics must not take the whole portfolio down:
//! every store lock acquisition recovers from poisoning instead of
//! propagating the panic to innocent schemes. The panicking scheme itself is
//! reported as failed by the portfolio engine.

use crate::cache::LossyCache;
use crate::complex::Complex;
use crate::hash::{fx_hash, FxHashMap};
use crate::limits::Budget;
use crate::node::{MEdge, MNode, NodeId, VEdge, VNode};
use crate::package::{DdPackage, GateKey, MemoryConfig};
use crate::table::{CIdx, ComplexTable};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Number of independently locked unique-table shards per node kind.
///
/// Sixteen shards keep lock contention negligible for the portfolio's
/// typical 4–8 racing schemes while staying cheap to clear and rebuild
/// during collection. Must be a power of two (shard = hash & (SHARDS - 1)).
pub const SHARDS: usize = 16;

/// Locks a store mutex, recovering from poisoning (see the module docs).
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks a store arena, recovering from poisoning.
pub(crate) fn read<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks a store arena, recovering from poisoning.
pub(crate) fn write<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Locks a store mutex on the hot path, recording whether the acquisition
/// had to block and, if so, for how long. The uncontended path is a single
/// `try_lock` (same cost as `lock`); the clock is only read when the lock
/// was actually contended, so the measurement itself stays off the common
/// path.
#[inline]
fn lock_timed<'a, T>(
    mutex: &'a Mutex<T>,
    waits: &mut u64,
    contention_ns: &mut u64,
) -> MutexGuard<'a, T> {
    match mutex.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            let start = std::time::Instant::now();
            let guard = lock(mutex);
            *waits += 1;
            *contention_ns += start.elapsed().as_nanos() as u64;
            guard
        }
    }
}

/// A unique-table entry: the canonical node id plus the workspace that first
/// interned it (for cross-thread and warm-reuse telemetry).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Interned {
    pub(crate) id: u32,
    pub(crate) owner: u32,
}

/// Roots one parked workspace publishes into the barrier so the collector
/// can mark on its behalf: protected node ids and weight indices, in-flight
/// operand edges, and the workspace's identity/gate-cache edges.
#[derive(Debug, Default)]
pub(crate) struct PublishedRoots {
    pub(crate) vroots: Vec<u32>,
    pub(crate) mroots: Vec<u32>,
    pub(crate) wroots: Vec<u32>,
    pub(crate) vedges: Vec<VEdge>,
    pub(crate) medges: Vec<MEdge>,
}

/// Mutable half of the GC barrier (guarded by [`SharedStore::barrier`];
/// waiting goes through [`SharedStore::barrier_cv`]).
#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    /// Monotonic id of barrier *requests*; parked workspaces use it to
    /// detect that the round they joined ended (however it ended).
    pub(crate) request: u64,
    /// Monotonic count of *completed* collections; a parked workspace whose
    /// round advanced this must invalidate its mirrors and memos.
    pub(crate) generation: u64,
    /// Roots of the workspaces parked in the current round (one entry per
    /// parked workspace — its length is the authoritative parked count).
    pub(crate) published: Vec<PublishedRoots>,
}

/// Aggregate telemetry of a [`SharedStore`].
///
/// Workspace-local counters (intern hits, cross-thread hits) are flushed
/// into the store when a workspace detaches, so the totals are complete once
/// a race has finished and its packages are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SharedStoreStats {
    /// Live nodes (both kinds) right now.
    pub live_nodes: usize,
    /// Highest live node count ever observed.
    pub peak_nodes: usize,
    /// Nodes ever allocated across all workspaces (unique-table misses).
    pub allocated_nodes: u64,
    /// Nodes reclaimed by shared-store collections.
    pub reclaimed_nodes: u64,
    /// Completed shared-store collections (sole-attachment and barrier).
    pub gc_runs: usize,
    /// Subset of [`gc_runs`](Self::gc_runs) that ran as safe-point barrier
    /// collections with other workspaces parked mid-race.
    pub gc_barrier_runs: usize,
    /// Live interned complex weights.
    pub complex_entries: usize,
    /// Unique-table and gate-cache lookups answered by an existing canonical
    /// entry (from any workspace, including the asking one).
    pub intern_hits: u64,
    /// Subset of `intern_hits` where the entry was created by a *different*
    /// workspace — the cross-thread sharing the store exists for.
    pub cross_thread_hits: u64,
    /// Subset of [`cross_thread_hits`](Self::cross_thread_hits) served by
    /// structure that predates the last [`SharedStore::begin_race`] mark —
    /// cross-*pair* reuse of a warm store kept alive by the batch driver.
    pub warm_hits: u64,
    /// Hot-path lock acquisitions (unique-table shards, shared gate cache,
    /// complex table) that found the lock held and had to block.
    pub shard_lock_waits: u64,
    /// Total time spent blocked in those acquisitions, in nanoseconds.
    /// Measured only on the blocking path: uncontended acquisitions
    /// contribute zero.
    pub shard_contention_ns: u64,
    /// Full mirror/memo invalidations workspaces performed after a
    /// collection recycled arena slots (each one silently discards the
    /// workspace's memo tables too).
    pub mirror_invalidations: u64,
    /// Time threads spent stopped at GC barriers, in nanoseconds: parked
    /// workspaces' park durations plus the collector's wait for the world
    /// to park. Sums *across* threads, so it can exceed wall-clock time.
    pub barrier_wait_ns: u64,
    /// Barrier rounds abandoned because some workspace failed to reach a
    /// safe point within `BARRIER_PATIENCE`. Each deferral doubles the
    /// requesting workspace's GC threshold, so even one changes every later
    /// collection's timing.
    pub barrier_deferrals: usize,
    /// Workspaces currently attached.
    pub attached: usize,
}

impl SharedStoreStats {
    /// Fraction of canonical-store hits served by another workspace's
    /// entry, or `None` before the first hit.
    pub fn cross_thread_hit_rate(&self) -> Option<f64> {
        if self.intern_hits == 0 {
            None
        } else {
            Some(self.cross_thread_hits as f64 / self.intern_hits as f64)
        }
    }
}

/// The thread-safe shared core of a set of decision-diagram workspaces.
///
/// Create one per circuit pair (or longer-lived unit of sharing, e.g. the
/// batch driver's per-width warm stores), then attach one workspace per
/// thread with [`workspace`](Self::workspace) /
/// [`workspace_with`](Self::workspace_with). Workspaces of *different* qubit
/// counts may share a store: unique tables are sharded by node hash, not by
/// level, so a miter package and a reconstruction package with extra
/// ancillas still share their common low-level subdiagrams.
///
/// # Examples
///
/// ```
/// use dd::{gates, SharedStore};
///
/// let store = SharedStore::new();
/// let mut a = store.workspace(2);
/// let mut b = store.workspace(2);
/// let ga = a.make_gate(&gates::h(), 0, &[]);
/// let gb = b.make_gate(&gates::h(), 0, &[]);
/// // Canonical across workspaces: the same (node, weight) handle.
/// assert_eq!(ga, gb);
/// // Per-workspace telemetry flushes into the store when workspaces detach.
/// drop((a, b));
/// assert!(store.stats().cross_thread_hits > 0);
/// ```
#[derive(Debug)]
pub struct SharedStore {
    pub(crate) ctab: Mutex<ComplexTable>,
    pub(crate) vshards: Vec<Mutex<FxHashMap<VNode, Interned>>>,
    pub(crate) mshards: Vec<Mutex<FxHashMap<MNode, Interned>>>,
    pub(crate) varena: RwLock<Vec<VNode>>,
    pub(crate) marena: RwLock<Vec<MNode>>,
    pub(crate) vfree: Mutex<Vec<u32>>,
    pub(crate) mfree: Mutex<Vec<u32>>,
    /// Shared gate-diagram cache (L2 behind each workspace's lossy L1).
    pub(crate) gate_cache: Mutex<FxHashMap<GateKey, (MEdge, u32)>>,
    /// Serialises attachment against collection and elects the collector:
    /// the collector holds it for the whole barrier round, so no workspace
    /// can appear (or fill mirrors) mid-sweep. Collection candidates only
    /// ever `try_lock` it — blocking here while another collector waits for
    /// the world to park would deadlock.
    pub(crate) gc_lock: Mutex<()>,
    /// Raised by the collector; polled by every workspace at its operation
    /// safe points (park when set).
    pub(crate) gc_requested: AtomicBool,
    pub(crate) barrier: Mutex<BarrierState>,
    pub(crate) barrier_cv: Condvar,
    pub(crate) attached: AtomicUsize,
    next_workspace: AtomicU32,
    /// Workspace ids below this mark predate the current race (see
    /// [`begin_race`](Self::begin_race)); hits on their entries count as
    /// warm hits.
    pub(crate) warm_floor: AtomicU32,
    pub(crate) vlive: AtomicUsize,
    pub(crate) mlive: AtomicUsize,
    pub(crate) peak_nodes: AtomicUsize,
    pub(crate) allocated: AtomicU64,
    pub(crate) reclaimed: AtomicU64,
    pub(crate) gc_runs: AtomicUsize,
    pub(crate) gc_barrier_runs: AtomicUsize,
    pub(crate) intern_hits: AtomicU64,
    pub(crate) cross_thread_hits: AtomicU64,
    pub(crate) warm_hits: AtomicU64,
    pub(crate) shard_lock_waits: AtomicU64,
    pub(crate) shard_contention_ns: AtomicU64,
    pub(crate) mirror_invalidations: AtomicU64,
    pub(crate) barrier_wait_ns: AtomicU64,
    pub(crate) barrier_deferrals: AtomicUsize,
}

impl SharedStore {
    /// Creates an empty shared store.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<SharedStore> {
        Arc::new(SharedStore {
            ctab: Mutex::new(ComplexTable::new()),
            vshards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            mshards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            varena: RwLock::new(Vec::new()),
            marena: RwLock::new(Vec::new()),
            vfree: Mutex::new(Vec::new()),
            mfree: Mutex::new(Vec::new()),
            gate_cache: Mutex::new(FxHashMap::default()),
            gc_lock: Mutex::new(()),
            gc_requested: AtomicBool::new(false),
            barrier: Mutex::new(BarrierState::default()),
            barrier_cv: Condvar::new(),
            attached: AtomicUsize::new(0),
            next_workspace: AtomicU32::new(0),
            warm_floor: AtomicU32::new(0),
            vlive: AtomicUsize::new(0),
            mlive: AtomicUsize::new(0),
            peak_nodes: AtomicUsize::new(0),
            allocated: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            gc_runs: AtomicUsize::new(0),
            gc_barrier_runs: AtomicUsize::new(0),
            intern_hits: AtomicU64::new(0),
            cross_thread_hits: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            shard_lock_waits: AtomicU64::new(0),
            shard_contention_ns: AtomicU64::new(0),
            mirror_invalidations: AtomicU64::new(0),
            barrier_wait_ns: AtomicU64::new(0),
            barrier_deferrals: AtomicUsize::new(0),
        })
    }

    /// Attaches an unbudgeted workspace over `n_qubits` qubits.
    pub fn workspace(self: &Arc<Self>, n_qubits: usize) -> DdPackage {
        self.workspace_with(n_qubits, Budget::unlimited(), MemoryConfig::default())
    }

    /// Attaches a workspace with an explicit budget and memory configuration.
    ///
    /// The workspace's lossy compute caches are sized by `config` as usual;
    /// when its automatic-GC threshold trips mid-race, it requests a
    /// safe-point barrier collection (see the module docs).
    pub fn workspace_with(
        self: &Arc<Self>,
        n_qubits: usize,
        budget: Budget,
        config: MemoryConfig,
    ) -> DdPackage {
        DdPackage::attached(self, n_qubits, budget, config)
    }

    /// Marks a race boundary for warm-reuse telemetry: canonical hits on
    /// structure interned *before* this call are counted as
    /// [`SharedStoreStats::warm_hits`] by workspaces attached after it.
    ///
    /// The batch driver calls this when handing a pooled store to the next
    /// circuit pair; on a fresh store the call is a no-op (nothing predates
    /// it).
    pub fn begin_race(&self) {
        self.warm_floor.store(
            self.next_workspace.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Number of workspaces currently attached.
    pub fn attached_workspaces(&self) -> usize {
        self.attached.load(Ordering::Acquire)
    }

    /// Live nodes across both arenas.
    pub(crate) fn live_nodes(&self) -> usize {
        self.vlive.load(Ordering::Relaxed) + self.mlive.load(Ordering::Relaxed)
    }

    /// Aggregate telemetry (see [`SharedStoreStats`]).
    pub fn stats(&self) -> SharedStoreStats {
        SharedStoreStats {
            live_nodes: self.live_nodes(),
            peak_nodes: self.peak_nodes.load(Ordering::Relaxed),
            allocated_nodes: self.allocated.load(Ordering::Relaxed),
            reclaimed_nodes: self.reclaimed.load(Ordering::Relaxed),
            gc_runs: self.gc_runs.load(Ordering::Relaxed),
            gc_barrier_runs: self.gc_barrier_runs.load(Ordering::Relaxed),
            complex_entries: lock(&self.ctab).live_len(),
            intern_hits: self.intern_hits.load(Ordering::Relaxed),
            cross_thread_hits: self.cross_thread_hits.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            shard_lock_waits: self.shard_lock_waits.load(Ordering::Relaxed),
            shard_contention_ns: self.shard_contention_ns.load(Ordering::Relaxed),
            mirror_invalidations: self.mirror_invalidations.load(Ordering::Relaxed),
            barrier_wait_ns: self.barrier_wait_ns.load(Ordering::Relaxed),
            barrier_deferrals: self.barrier_deferrals.load(Ordering::Relaxed),
            attached: self.attached.load(Ordering::Acquire),
        }
    }
}

/// The package-side handle of one attachment: mirrors, memos and telemetry.
///
/// Mirrors are `RefCell`s because diagram *reads* (`vnode`, weight lookups)
/// happen behind `&self` package methods; the package itself is `Send` but
/// not `Sync`, which is exactly the one-workspace-per-thread contract.
#[derive(Debug)]
pub(crate) struct SharedHandle {
    pub(crate) store: Arc<SharedStore>,
    pub(crate) ws_id: u32,
    /// Snapshot of the store's warm floor at attach time: entries owned by
    /// workspaces below it predate this race.
    warm_floor: u32,
    vmirror: RefCell<Vec<VNode>>,
    mmirror: RefCell<Vec<MNode>>,
    cmirror: RefCell<Vec<Complex>>,
    mul_memo: LossyCache<(CIdx, CIdx), CIdx>,
    add_memo: LossyCache<(CIdx, CIdx), CIdx>,
    div_memo: LossyCache<(CIdx, CIdx), CIdx>,
    /// Exact-bits memo for raw value interning: identical bit patterns must
    /// map to the canonical index, so memoising on bits is loss-free.
    bits_memo: LossyCache<(u64, u64), CIdx>,
    pub(crate) intern_hits: u64,
    pub(crate) cross_thread_hits: u64,
    pub(crate) warm_hits: u64,
    /// Hot-path lock acquisitions that had to block (see `lock_timed`).
    shard_lock_waits: u64,
    /// Nanoseconds spent blocked in those acquisitions.
    shard_contention_ns: u64,
    /// Full mirror/memo invalidations (one per `clear_local`).
    mirror_invalidations: u64,
}

/// log2 slots of the weight-arithmetic memo caches.
const MEMO_BITS: u32 = 14;

impl SharedHandle {
    pub(crate) fn new(store: &Arc<SharedStore>) -> Self {
        // Attachment synchronises with collection: once this increment is
        // visible (under the gc_lock), no barrier round can start or finish
        // without counting us. A panicking sibling may have poisoned the
        // lock; the guarded data is just the collector election, so recover.
        let _guard = lock(&store.gc_lock);
        store.attached.fetch_add(1, Ordering::AcqRel);
        SharedHandle {
            store: Arc::clone(store),
            ws_id: store.next_workspace.fetch_add(1, Ordering::Relaxed),
            warm_floor: store.warm_floor.load(Ordering::Relaxed),
            vmirror: RefCell::new(Vec::new()),
            mmirror: RefCell::new(Vec::new()),
            cmirror: RefCell::new(Vec::new()),
            mul_memo: LossyCache::new("shared_mul", MEMO_BITS),
            add_memo: LossyCache::new("shared_add", MEMO_BITS),
            div_memo: LossyCache::new("shared_div", MEMO_BITS),
            bits_memo: LossyCache::new("shared_intern", MEMO_BITS),
            intern_hits: 0,
            cross_thread_hits: 0,
            warm_hits: 0,
            shard_lock_waits: 0,
            shard_contention_ns: 0,
            mirror_invalidations: 0,
        }
    }

    /// Records a canonical hit on `owner`'s entry for telemetry.
    #[inline]
    fn note_hit(&mut self, owner: u32) {
        self.intern_hits += 1;
        if owner != self.ws_id {
            self.cross_thread_hits += 1;
            if owner < self.warm_floor {
                self.warm_hits += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Node reads (mirrored, lock-free after first touch)
    // ------------------------------------------------------------------

    pub(crate) fn vnode(&self, id: NodeId) -> VNode {
        let idx = id.index();
        {
            let mirror = self.vmirror.borrow();
            if idx < mirror.len() {
                let node = mirror[idx];
                // A freed slot may have been recycled since it was mirrored
                // (only across a barrier this workspace passed); refetch.
                if !node.is_free() {
                    return node;
                }
            }
        }
        let mut mirror = self.vmirror.borrow_mut();
        let arena = read(&self.store.varena);
        let len = mirror.len();
        if idx < len {
            mirror[idx] = arena[idx];
        } else {
            mirror.extend_from_slice(&arena[len..]);
        }
        mirror[idx]
    }

    pub(crate) fn mnode(&self, id: NodeId) -> MNode {
        let idx = id.index();
        {
            let mirror = self.mmirror.borrow();
            if idx < mirror.len() {
                let node = mirror[idx];
                if !node.is_free() {
                    return node;
                }
            }
        }
        let mut mirror = self.mmirror.borrow_mut();
        let arena = read(&self.store.marena);
        let len = mirror.len();
        if idx < len {
            mirror[idx] = arena[idx];
        } else {
            mirror.extend_from_slice(&arena[len..]);
        }
        mirror[idx]
    }

    // ------------------------------------------------------------------
    // Complex weights
    // ------------------------------------------------------------------

    pub(crate) fn value(&self, idx: CIdx) -> Complex {
        let i = idx.index();
        {
            let mirror = self.cmirror.borrow();
            if i < mirror.len() {
                let v = mirror[i];
                // NaN marks a compaction-freed (possibly recycled) slot.
                if !v.re.is_nan() {
                    return v;
                }
            }
        }
        let mut mirror = self.cmirror.borrow_mut();
        let table = lock(&self.store.ctab);
        if i < mirror.len() {
            mirror[i] = table.slot(i);
        } else {
            table.extend_mirror(&mut mirror);
        }
        mirror[i]
    }

    pub(crate) fn intern(&mut self, value: Complex) -> CIdx {
        if value.is_zero() {
            return CIdx::ZERO;
        }
        if value.is_one() {
            return CIdx::ONE;
        }
        let key = (value.re.to_bits(), value.im.to_bits());
        if let Some(idx) = self.bits_memo.get(&key) {
            return idx;
        }
        let idx = lock_timed(
            &self.store.ctab,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        )
        .lookup(value);
        self.bits_memo.insert(key, idx);
        idx
    }

    /// Interns a whole slice of values, appending one `CIdx` per value to
    /// `out` — same sequence the scalar [`intern`](Self::intern) loop would
    /// produce, but all memo misses are published under **one** table-lock
    /// acquisition instead of one per weight, so a dense terminal-case
    /// rebuild charges the shard lock once per block.
    pub(crate) fn intern_batch(&mut self, values: &[Complex], out: &mut Vec<CIdx>) {
        out.reserve(values.len());
        let base = out.len();
        // Pass 1: resolve shortcuts and memo hits without touching the lock;
        // remember the positions that missed.
        let mut misses: Vec<(usize, Complex)> = Vec::new();
        for &value in values {
            if value.is_zero() {
                out.push(CIdx::ZERO);
                continue;
            }
            if value.is_one() {
                out.push(CIdx::ONE);
                continue;
            }
            let key = (value.re.to_bits(), value.im.to_bits());
            if let Some(idx) = self.bits_memo.get(&key) {
                out.push(idx);
            } else {
                misses.push((out.len(), value));
                out.push(CIdx::ZERO); // placeholder, patched below
            }
        }
        // Pass 2: one lock acquisition publishes every miss, in order.
        if !misses.is_empty() {
            {
                let mut table = lock_timed(
                    &self.store.ctab,
                    &mut self.shard_lock_waits,
                    &mut self.shard_contention_ns,
                );
                for &(pos, value) in &misses {
                    out[pos] = table.lookup(value);
                }
            }
            for &(pos, value) in &misses {
                self.bits_memo
                    .insert((value.re.to_bits(), value.im.to_bits()), out[pos]);
            }
        }
        debug_assert_eq!(out.len() - base, values.len());
        obs::metrics::add(obs::metrics::DD_BATCH_INTERNED, values.len() as u64);
    }

    pub(crate) fn mul(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() || b.is_zero() {
            return CIdx::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        if let Some(idx) = self.mul_memo.get(&(a, b)) {
            return idx;
        }
        let product = self.value(a) * self.value(b);
        let idx = self.intern(product);
        self.mul_memo.insert((a, b), idx);
        idx
    }

    pub(crate) fn add(&mut self, a: CIdx, b: CIdx) -> CIdx {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        if let Some(idx) = self.add_memo.get(&(a, b)) {
            return idx;
        }
        let sum = self.value(a) + self.value(b);
        let idx = self.intern(sum);
        self.add_memo.insert((a, b), idx);
        idx
    }

    pub(crate) fn div(&mut self, a: CIdx, b: CIdx) -> CIdx {
        debug_assert!(!b.is_zero(), "division of interned values by zero");
        if a.is_zero() {
            return CIdx::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if let Some(idx) = self.div_memo.get(&(a, b)) {
            return idx;
        }
        let quotient = self.value(a) / self.value(b);
        let idx = self.intern(quotient);
        self.div_memo.insert((a, b), idx);
        idx
    }

    pub(crate) fn conj(&mut self, a: CIdx) -> CIdx {
        if a.is_zero() || a.is_one() {
            return a;
        }
        let conj = self.value(a).conj();
        self.intern(conj)
    }

    // ------------------------------------------------------------------
    // Node interning (sharded unique tables)
    // ------------------------------------------------------------------

    /// Interns a vector node; returns the canonical id and whether it was
    /// freshly allocated by this call.
    pub(crate) fn intern_vnode(&mut self, node: VNode) -> (NodeId, bool) {
        let hash = fx_hash(&node);
        let shard = &self.store.vshards[(hash as usize) & (SHARDS - 1)];
        let mut map = lock_timed(
            shard,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        );
        if let Some(found) = map.get(&node) {
            let owner = found.owner;
            let id = found.id;
            drop(map);
            self.note_hit(owner);
            return (NodeId(id), false);
        }
        let id = {
            let slot = lock(&self.store.vfree).pop();
            let mut arena = write(&self.store.varena);
            match slot {
                Some(slot) => {
                    arena[slot as usize] = node;
                    slot
                }
                None => {
                    arena.push(node);
                    (arena.len() - 1) as u32
                }
            }
        };
        map.insert(
            node,
            Interned {
                id,
                owner: self.ws_id,
            },
        );
        drop(map);
        self.note_allocation(
            self.store.vlive.fetch_add(1, Ordering::Relaxed)
                + 1
                + self.store.mlive.load(Ordering::Relaxed),
        );
        {
            let mut mirror = self.vmirror.borrow_mut();
            let idx = id as usize;
            if idx < mirror.len() {
                mirror[idx] = node;
            } else if idx == mirror.len() {
                mirror.push(node);
            }
        }
        (NodeId(id), true)
    }

    /// Interns a matrix node; see [`intern_vnode`](Self::intern_vnode).
    pub(crate) fn intern_mnode(&mut self, node: MNode) -> (NodeId, bool) {
        let hash = fx_hash(&node);
        let shard = &self.store.mshards[(hash as usize) & (SHARDS - 1)];
        let mut map = lock_timed(
            shard,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        );
        if let Some(found) = map.get(&node) {
            let owner = found.owner;
            let id = found.id;
            drop(map);
            self.note_hit(owner);
            return (NodeId(id), false);
        }
        let id = {
            let slot = lock(&self.store.mfree).pop();
            let mut arena = write(&self.store.marena);
            match slot {
                Some(slot) => {
                    arena[slot as usize] = node;
                    slot
                }
                None => {
                    arena.push(node);
                    (arena.len() - 1) as u32
                }
            }
        };
        map.insert(
            node,
            Interned {
                id,
                owner: self.ws_id,
            },
        );
        drop(map);
        self.note_allocation(
            self.store.mlive.fetch_add(1, Ordering::Relaxed)
                + 1
                + self.store.vlive.load(Ordering::Relaxed),
        );
        {
            let mut mirror = self.mmirror.borrow_mut();
            let idx = id as usize;
            if idx < mirror.len() {
                mirror[idx] = node;
            } else if idx == mirror.len() {
                mirror.push(node);
            }
        }
        (NodeId(id), true)
    }

    fn note_allocation(&self, live: usize) {
        self.store.allocated.fetch_add(1, Ordering::Relaxed);
        self.store.peak_nodes.fetch_max(live, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Shared gate cache (L2)
    // ------------------------------------------------------------------

    pub(crate) fn gate_get(&mut self, key: &GateKey) -> Option<MEdge> {
        let map = lock_timed(
            &self.store.gate_cache,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        );
        let (edge, owner) = map.get(key)?;
        let (edge, owner) = (*edge, *owner);
        drop(map);
        self.note_hit(owner);
        Some(edge)
    }

    pub(crate) fn gate_insert(&mut self, key: GateKey, edge: MEdge) {
        lock_timed(
            &self.store.gate_cache,
            &mut self.shard_lock_waits,
            &mut self.shard_contention_ns,
        )
        .entry(key)
        .or_insert((edge, self.ws_id));
    }

    /// Invalidates every mirror and memo — required after any collection
    /// (own, sole or barrier) recycles arena slots and compacts the complex
    /// table.
    pub(crate) fn clear_local(&mut self) {
        self.mirror_invalidations += 1;
        self.vmirror.borrow_mut().clear();
        self.mmirror.borrow_mut().clear();
        self.cmirror.borrow_mut().clear();
        self.mul_memo.clear();
        self.add_memo.clear();
        self.div_memo.clear();
        self.bits_memo.clear();
    }
}

impl Drop for SharedHandle {
    fn drop(&mut self) {
        // Flush local telemetry so SharedStore::stats() is complete once a
        // race's workspaces are gone, then detach. A pending barrier may be
        // waiting for this workspace: the detach shrinks the parked quorum,
        // so wake the collector to re-count.
        self.store
            .intern_hits
            .fetch_add(self.intern_hits, Ordering::Relaxed);
        self.store
            .cross_thread_hits
            .fetch_add(self.cross_thread_hits, Ordering::Relaxed);
        self.store
            .warm_hits
            .fetch_add(self.warm_hits, Ordering::Relaxed);
        self.store
            .shard_lock_waits
            .fetch_add(self.shard_lock_waits, Ordering::Relaxed);
        self.store
            .shard_contention_ns
            .fetch_add(self.shard_contention_ns, Ordering::Relaxed);
        self.store
            .mirror_invalidations
            .fetch_add(self.mirror_invalidations, Ordering::Relaxed);
        obs::metrics::add(obs::metrics::DD_UNIQUE_HITS, self.intern_hits);
        obs::metrics::add(obs::metrics::DD_CROSS_THREAD_HITS, self.cross_thread_hits);
        obs::metrics::add(obs::metrics::DD_SHARD_WAITS, self.shard_lock_waits);
        obs::metrics::add(
            obs::metrics::DD_SHARD_CONTENTION_NS,
            self.shard_contention_ns,
        );
        obs::metrics::add(
            obs::metrics::DD_MIRROR_INVALIDATIONS,
            self.mirror_invalidations,
        );
        self.store.attached.fetch_sub(1, Ordering::AcqRel);
        if self.store.gc_requested.load(Ordering::Acquire) {
            let _barrier = lock(&self.store.barrier);
            self.store.barrier_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn attach_recovers_from_a_poisoned_gc_lock() {
        // A scheme thread that panics while holding the gc_lock (e.g. mid
        // attach) poisons it; later attaches and detaches must recover
        // instead of cascading the panic through the whole portfolio.
        let store = SharedStore::new();
        let poisoner = Arc::clone(&store);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _guard = poisoner.gc_lock.lock().unwrap();
            panic!("scheme died while attached");
        }));
        assert!(store.gc_lock.is_poisoned(), "test setup: lock not poisoned");

        let mut workspace = store.workspace(2);
        let gate = workspace.make_gate(&gates::h(), 0, &[]);
        assert!(!gate.is_zero());
        drop(workspace);
        assert_eq!(store.stats().attached, 0);

        // Collection still works on the recovered lock.
        let mut collector = store.workspace(2);
        collector.garbage_collect();
        let rebuilt = collector.make_gate(&gates::h(), 0, &[]);
        assert_eq!(rebuilt, gate, "canonicity lost across poison recovery");
    }

    #[test]
    fn warm_hits_count_reuse_of_pre_race_structure() {
        let store = SharedStore::new();
        let mut first = store.workspace(3);
        let gate = first.make_gate(&gates::h(), 1, &[]);
        drop(first);
        assert_eq!(store.stats().warm_hits, 0, "same race: nothing is warm");

        store.begin_race();
        let mut second = store.workspace(3);
        assert_eq!(second.make_gate(&gates::h(), 1, &[]), gate);
        drop(second);
        let stats = store.stats();
        assert!(
            stats.warm_hits > 0,
            "reuse across begin_race must count as warm: {stats:?}"
        );
        assert!(stats.warm_hits <= stats.cross_thread_hits);
    }
}
