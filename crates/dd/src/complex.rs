//! Complex numbers with tolerance-aware comparison.
//!
//! The decision-diagram package stores edge weights as complex numbers. Two
//! weights that differ by less than [`TOLERANCE`] are considered equal, which
//! keeps the diagrams canonical in the presence of floating-point round-off.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// Absolute tolerance used when interning and comparing complex values.
///
/// Chosen to be well above the round-off accumulated by the gate sequences in
/// the paper's benchmark families (hundreds to thousands of gates) while still
/// far below any physically meaningful amplitude difference. Equivalence
/// decisions at the checker level use their own, coarser threshold.
pub const TOLERANCE: f64 = 1e-12;

/// A complex number used as a decision-diagram edge weight.
///
/// # Examples
///
/// ```
/// use dd::Complex;
///
/// let a = Complex::new(1.0, 0.0);
/// let b = Complex::new(0.0, 1.0);
/// assert!((a * b).approx_eq(Complex::new(0.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates the complex number `e^{i theta}` on the unit circle.
    ///
    /// ```
    /// use dd::Complex;
    /// let c = Complex::from_phase(std::f64::consts::PI);
    /// assert!(c.approx_eq(Complex::new(-1.0, 0.0)));
    /// ```
    #[inline]
    pub fn from_phase(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) of the complex number.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1 / z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `z` is (numerically) zero.
    #[inline]
    pub fn recip(self) -> Self {
        let n = self.norm_sqr();
        debug_assert!(n > 0.0, "attempted to invert a zero complex value");
        Complex {
            re: self.re / n,
            im: -self.im / n,
        }
    }

    /// Returns `true` when the value is within [`TOLERANCE`] of zero in both
    /// components.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.re.abs() < TOLERANCE && self.im.abs() < TOLERANCE
    }

    /// Returns `true` when the value is within [`TOLERANCE`] of one.
    #[inline]
    pub fn is_one(self) -> bool {
        (self.re - 1.0).abs() < TOLERANCE && self.im.abs() < TOLERANCE
    }

    /// Component-wise comparison within [`TOLERANCE`].
    #[inline]
    pub fn approx_eq(self, other: Complex) -> bool {
        (self.re - other.re).abs() < TOLERANCE && (self.im - other.im).abs() < TOLERANCE
    }

    /// Component-wise comparison within a caller-provided tolerance.
    #[inline]
    pub fn approx_eq_with(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() < eps && (self.im - other.im).abs() < eps
    }

    /// Square root of a complex number (principal branch).
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex {
            re: self.re * rhs,
            im: self.im * rhs,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im.abs() < TOLERANCE {
            write!(f, "{:.6}", self.re)
        } else if self.re.abs() < TOLERANCE {
            write!(f, "{:.6}i", self.im)
        } else if self.im < 0.0 {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        } else {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert!((a + b).approx_eq(Complex::new(4.0, 1.0)));
        assert!((a - b).approx_eq(Complex::new(-2.0, 3.0)));
        assert!((a * b).approx_eq(Complex::new(5.0, 5.0)));
        assert!((-a).approx_eq(Complex::new(-1.0, -2.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(0.3, -0.7);
        let b = Complex::new(-1.2, 0.4);
        let c = a * b;
        assert!((c / b).approx_eq(a));
        assert!((c / a).approx_eq(b));
    }

    #[test]
    fn recip_of_unit_phase_is_conjugate() {
        let p = Complex::from_phase(0.77);
        assert!(p.recip().approx_eq(p.conj()));
    }

    #[test]
    fn polar_roundtrip() {
        let c = Complex::from_polar(2.0, 1.1);
        assert!((c.abs() - 2.0).abs() < 1e-12);
        assert!((c.arg() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn zero_and_one_predicates() {
        assert!(Complex::ZERO.is_zero());
        assert!(Complex::ONE.is_one());
        assert!(!Complex::I.is_zero());
        assert!(!Complex::I.is_one());
        assert!(Complex::new(1e-13, -1e-13).is_zero());
    }

    #[test]
    fn sqrt_squares_back() {
        let c = Complex::new(-3.0, 4.0);
        let s = c.sqrt();
        assert!((s * s).approx_eq(c));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex::real(0.5)), "0.500000");
        assert_eq!(format!("{}", Complex::new(0.0, -0.25)), "-0.250000i");
        assert_eq!(format!("{}", Complex::new(1.0, 1.0)), "1.000000+1.000000i");
    }
}
