//! # dd — decision diagrams for quantum states and operators
//!
//! This crate implements a QMDD-style decision-diagram package: a compact,
//! canonical representation of `2^n`-dimensional state vectors and
//! `2^n × 2^n` unitary matrices with the operations needed for quantum
//! circuit simulation and equivalence checking.
//!
//! It is the substrate on which the equivalence-checking schemes of
//! *Burgholzer & Wille, "Handling Non-Unitaries in Quantum Circuit
//! Equivalence Checking" (DAC 2022)* are reproduced: the paper's tool (QCEC)
//! builds on an equivalent C++ package.
//!
//! ## Highlights
//!
//! * Canonical diagrams through weight normalisation, an interning
//!   [`ComplexTable`] and hash-consed unique tables.
//! * Vector diagrams ([`VEdge`]) and matrix diagrams ([`MEdge`]) with
//!   addition, matrix-vector and matrix-matrix multiplication, Kronecker-free
//!   controlled-gate construction, conjugate transposition, inner products,
//!   traces, measurement probabilities and projections.
//! * Dense conversions (for small registers) used extensively by the test
//!   suite to validate the diagram algebra against straightforward linear
//!   algebra.
//!
//! ## Quick example
//!
//! ```
//! use dd::{Control, DdPackage, gates};
//!
//! // Build a Bell state and check its measurement statistics.
//! let mut p = DdPackage::new(2);
//! let mut state = p.zero_state();
//! state = p.apply_gate(state, &gates::h(), 0, &[]);
//! state = p.apply_gate(state, &gates::x(), 1, &[Control::pos(0)]);
//! let (p0, p1) = p.probabilities(state, 1);
//! assert!((p0 - 0.5).abs() < 1e-12);
//! assert!((p1 - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod complex;
pub mod gates;
mod hash;
mod limits;
mod node;
mod package;
mod table;

mod export;

pub use complex::{Complex, TOLERANCE};
pub use gates::GateMatrix;
pub use limits::{Budget, CancelToken, LimitExceeded};
pub use node::{MEdge, MNode, NodeId, VEdge, VNode};
pub use package::{Control, DdPackage, PackageStats};
pub use table::{CIdx, ComplexTable};
