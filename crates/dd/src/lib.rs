//! # dd — decision diagrams for quantum states and operators
//!
//! This crate implements a QMDD-style decision-diagram package: a compact,
//! canonical representation of `2^n`-dimensional state vectors and
//! `2^n × 2^n` unitary matrices with the operations needed for quantum
//! circuit simulation and equivalence checking.
//!
//! It is the substrate on which the equivalence-checking schemes of
//! *Burgholzer & Wille, "Handling Non-Unitaries in Quantum Circuit
//! Equivalence Checking" (DAC 2022)* are reproduced: the paper's tool (QCEC)
//! builds on an equivalent C++ package.
//!
//! ## Highlights
//!
//! * Canonical diagrams through weight normalisation, an interning
//!   [`ComplexTable`] and hash-consed unique tables.
//! * Vector diagrams ([`VEdge`]) and matrix diagrams ([`MEdge`]) with
//!   addition, matrix-vector and matrix-matrix multiplication, Kronecker-free
//!   controlled-gate construction, conjugate transposition, inner products,
//!   traces, measurement probabilities and projections.
//! * A managed memory system (see below): bounded lossy compute tables,
//!   per-level open-addressed unique tables, a gate-diagram cache and
//!   mark-and-sweep garbage collection with recycled arena slots.
//! * Dense conversions (for small registers) used extensively by the test
//!   suite to validate the diagram algebra against straightforward linear
//!   algebra.
//!
//! ## Memory model
//!
//! A [`DdPackage`] owns two node arenas (vector and matrix) with free lists.
//! Hash-consing goes through one open-addressed unique table per qubit
//! level; memoisation goes through fixed-size *lossy* caches — direct
//! mapped, one probe per lookup, overwrite on collision — so cache memory is
//! bounded by construction and an evicted entry only ever costs a
//! recomputation, never a wrong result. Sizing is controlled by
//! [`MemoryConfig`]; hit rates and collection counts are reported by
//! [`DdPackage::memory_stats`].
//!
//! Garbage collection is mark-and-sweep from three root sets: edges
//! registered through [`DdPackage::protect_vector`] /
//! [`DdPackage::protect_matrix`] (reference counted), the identity and
//! gate-diagram caches, and the operands of the operation that triggered an
//! automatic run. Automatic collection only happens at the *entry* of
//! top-level operations (`apply_gate`, the multiplications, additions and
//! the conjugate transpose), never mid-recursion. **Callers must protect any
//! edge they hold across other package operations** and unprotect it when
//! done; an edge that is an operand of the current call is protected
//! automatically. After a collection the node-keyed compute tables are
//! cleared (arena slots are recycled under the same ids), while cached gate
//! diagrams remain valid because they are roots. The same pass compacts the
//! [`ComplexTable`]: weights referenced by no surviving node, protected
//! edge or cached diagram are freed and their slots recycled, bounding
//! weight-table growth on long runs (`MemoryStats::complex_entries` /
//! `complex_reclaimed` report the effect).
//!
//! ## Kernel layer
//!
//! The numeric hot paths run on data-parallel kernels over *structure-of-
//! arrays* lanes: complex values are stored and processed as separate
//! `re`/`im` `f64` slices (the [`ComplexTable`] itself stores its entries
//! this way). The [`kernels`] module dispatches each operation once per
//! process: `AVX2` intrinsics when the CPU has them, otherwise an
//! autovectorizable scalar loop that is always compiled (and can be forced
//! with the `scalar-kernels` cargo feature, which CI builds and benches on
//! every push). The two backends are **bit-identical by construction** —
//! no FMA contraction, the same per-lane expression trees, and reductions
//! that use a fixed 4-accumulator schedule in both — so a verdict can
//! never depend on which machine produced it; the kernel bench asserts
//! this bitwise on every CI run.
//!
//! Three layers sit on the kernels:
//!
//! * **Batched interning** — [`ComplexTable::lookup_batch`] hashes a whole
//!   slice's bucket keys in one pass and probes each value's merged
//!   candidate set with one vectorized tolerance scan, returning exactly
//!   the `CIdx` sequence the scalar [`ComplexTable::lookup`] loop would
//!   (property-tested, including near-bucket-boundary adversaries). On a
//!   shared store, a batch publishes under a single lock acquisition.
//! * **Dense terminal-case apply** — below
//!   [`MemoryConfig::dense_cutoff`](MemoryConfig) levels (default
//!   [`DEFAULT_DENSE_CUTOFF`] = 3, clamped to [`DENSE_CUTOFF_MAX`], 0
//!   disables), the *vector* recursions (mat·vec apply, vector add) expand
//!   node functions into dense SoA amplitude blocks, compute with strided
//!   kernels and re-intern the result in one batch. Matrix·matrix and
//!   matrix-add recursions never drop dense: their blocks are 4^levels
//!   wide, and measurement showed the expand/re-intern round trip losing
//!   ~3x to the memoized recursion on structured miters — which is why the
//!   dense path is mat·vec-only (verdict parity across cutoffs is asserted
//!   by `portfolio/tests/dense_parity.rs`; see `BENCH_kernels.json`
//!   caveats).
//! * **Dense fidelity** — `sim`'s statevector comparison extracts both
//!   diagrams' amplitudes into lanes
//!   ([`DdPackage::amplitude_lanes`]) and reduces with the conjugated dot
//!   kernel, the one kernel where SIMD shows its full headroom (the
//!   strict-FP scalar reduction cannot autovectorize).
//!
//! ## Concurrency model
//!
//! A [`DdPackage`] by itself is single-threaded (`Send`, not `Sync`). For
//! portfolio racing, the canonicity-carrying half can be split into a
//! [`SharedStore`] with one package-*workspace* per thread
//! ([`SharedStore::workspace`]):
//!
//! * **Shared (in the store):** the canonical complex table (striped —
//!   each bucket row hashes to one of a fixed set of mutexes, and a
//!   publish locks only the stripes its probe windows touch, in ascending
//!   order; batches are the *only* shared write path), the vector/matrix
//!   unique tables (sharded by node hash into independently locked maps),
//!   the append-only node arenas (reader/writer locks), the gate-diagram
//!   L2 cache, free lists and telemetry counters. Any thread interning the
//!   same `(weight, children)` gets the *same* canonical edge, so racing
//!   schemes turn duplicated construction into cross-thread cache hits
//!   ([`MemoryStats::cross_thread_hits`]).
//! * **Epoch-snapshot reads:** every completed collection publishes an
//!   immutable [`Generation`](store) — an `Arc`-shared copy of the node
//!   arenas and complex lanes — and each workspace *pins* the current
//!   generation when it attaches and re-pins after every collection it
//!   crosses. Reads of pre-snapshot structure go straight to the pinned
//!   copy with no lock and no atomic; only post-snapshot tail slots fall
//!   back to a bulk fetch under the arena read lock. A superseded
//!   generation is not reclaimed until its last reader re-pins (deferred
//!   reclamation — `dd.store.retired_generations` vs
//!   `dd.store.deferred_reclaim_bytes` below), so a pinned read can never
//!   observe a recycled slot and `mirror_invalidations` is pinned at zero.
//! * **Thread-local (in each workspace):** the lossy compute caches (they
//!   are overwrite-on-collision, so thread-local is correct and lock-free),
//!   the identity cache (canonical interning makes independently built
//!   identities identical), [`Budget`]/[`CancelToken`], protection roots and
//!   [`MemoryStats`].
//! * **GC safe-point barrier:** collection on a shared store stops the
//!   world *at its safe points* and runs mid-race. A workspace whose GC
//!   threshold trips elects itself the collector (a non-blocking `try_lock`
//!   of the store's GC lock, which attachment also takes) and raises a
//!   `gc_requested` flag; every other workspace polls the flag at its
//!   operation safe points (the entries of `apply`/`mul`/`add`/
//!   `transpose`) and *parks* there with its roots published — protected
//!   edges, in-flight operands, identity and gate caches. Once all other
//!   attachments are parked (or detached), the collector sweeps from every
//!   published root set plus the shared gate cache, rebuilds the sharded
//!   unique tables, compacts the complex table and publishes a fresh
//!   generation before releasing the barrier; everyone then re-pins and
//!   clears only the node-keyed memos. The weight-keyed memos *survive*
//!   the sweep: their complex indices are published as GC roots, and
//!   compaction keeps marked indices stable. Protected edges keep their
//!   node ids, so parked diagrams stay pointer-identical across the swap.
//!   An attachment that never reaches a safe point (idle, or one very long
//!   operation) makes the collector give up after a bounded patience and
//!   fall back to deferring collection — which is why a thread should hold
//!   at most one attached workspace at a time: a second one can never park
//!   while its sibling runs. Workspaces attached later pin the current
//!   generation and can never see a stale slot.
//! * **Warm reuse:** a store may outlive a race (the portfolio batch driver
//!   pools one per register width); [`SharedStore::begin_race`] marks the
//!   boundary and hits on pre-existing structure are reported as warm hits.
//! * **Panic isolation:** store locks recover from poisoning (their
//!   critical sections keep the data consistent at every panic point), so
//!   one panicking racer cannot take the store — or the other racers —
//!   down with it.
//!
//! ## Observability
//!
//! The crate reports into the `obs` metrics registry — always on, one
//! relaxed atomic add per event on the rare paths and bulk folds on the hot
//! ones (per-operation cache counters are summed into the registry once,
//! when a [`DdPackage`] drops) — and emits structured spans/events through
//! `obs::trace` when a sink is installed (`verify --trace-file`). With no
//! sink, tracing costs one relaxed atomic load per call site.
//!
//! Each metric's catalogue entry carries a *caveat*: what the number
//! misleads about when read alone. The dd metrics (unit in parentheses):
//!
//! | metric | unit | misleads about |
//! |---|---|---|
//! | `dd.compute.lookups` / `dd.compute.hits` | count | folded at package drop; live packages are invisible until then |
//! | `dd.gate.lookups` / `dd.gate.hits` | count | repeated single-gate circuits hit ~100% regardless of cache quality |
//! | `dd.unique.hits` | count | includes same-thread re-interns — not a sharing metric |
//! | `dd.unique.cross_thread_hits` | count | attribution is by first-interner; symmetric duplicates count for neither |
//! | `dd.gc.runs` / `dd.gc.reclaimed` | count | high counts can be healthy pressure or a thrashing threshold — check reclaimed per run |
//! | `dd.gc.barrier_runs` | count | completed rounds only; aborted rounds are `barrier_deferrals` |
//! | `dd.gc.barrier_deferrals` | count | one deferral doubles the collector's threshold, shifting all later GC timing |
//! | `dd.gc.barrier_wait_ns` | nanos | sums across threads, so it can exceed wall-clock time |
//! | `dd.ctab.compacted` | count | entries, not bytes; rehashing survivors is not counted |
//! | `dd.store.shard_waits` / `shard_contention_ns` | count / nanos | timed only on the blocking path; uncontended acquisitions report zero |
//! | `dd.store.mirror_invalidations` | count | pinned at zero under epoch-snapshot reads; kept so old dashboards show the regression if it ever returns |
//! | `dd.store.epoch_pins` | count | one pin per attach plus one per collection crossed; a high count means frequent GC, not expensive reads — pinning is an `Arc` clone |
//! | `dd.store.retired_generations` | count | equals completed shared collections; retirement is not reclamation — a pinned generation lives on until its last reader moves |
//! | `dd.store.deferred_reclaim_bytes` | count | a running total of bytes that *entered* deferral, never decremented when freed; it bounds transient overhead, not live memory |
//! | `dd.kernels.backend_avx2` / `_scalar` | count | one increment per process at first dispatch — a config gauge, not a usage meter |
//! | `dd.dense.applies` | count | counts compute-cache *misses* routed dense; a high hit rate makes this small regardless of the cutoff |
//! | `dd.ctab.batch_interned` | count | counts weights, not batches; says nothing about lock acquisitions saved |
//! | `dd.gates.twiddle_hits` | count | only cold gate-DD builds reach this path — the gate cache absorbs repeats first |
//!
//! Trace events: `gc.private`, `gc.sole`, `gc.barrier` (a span whose end
//! records `outcome` collected/deferred), `gc.barrier.parked`,
//! `gc.barrier.sweep` and per-workspace `gc.park` events with park
//! durations. Contention counters (`SharedStoreStats::shard_lock_waits`,
//! `shard_contention_ns`, `barrier_wait_ns`, `barrier_deferrals`,
//! `epoch_pins`, `retired_generations`, `deferred_reclaim_bytes`) are
//! always on and reported per race through the portfolio's shared-store
//! report.
//!
//! ## Quick example
//!
//! ```
//! use dd::{Control, DdPackage, gates};
//!
//! // Build a Bell state and check its measurement statistics.
//! let mut p = DdPackage::new(2);
//! let mut state = p.zero_state();
//! state = p.apply_gate(state, &gates::h(), 0, &[]);
//! state = p.apply_gate(state, &gates::x(), 1, &[Control::pos(0)]);
//! let (p0, p1) = p.probabilities(state, 1);
//! assert!((p0 - 0.5).abs() < 1e-12);
//! assert!((p1 - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod cache;
mod complex;
pub mod gates;
mod hash;
pub mod kernels;
mod limits;
mod node;
mod package;
pub mod store;
mod table;

mod export;

pub use cache::CacheCounters;
pub use complex::{Complex, TOLERANCE};
pub use gates::GateMatrix;
pub use limits::{Budget, CancelToken, LimitExceeded};
pub use node::{MEdge, MNode, NodeId, VEdge, VNode};
pub use package::{
    Control, DdPackage, MemoryConfig, MemoryStats, PackageStats, DEFAULT_DENSE_CUTOFF,
    DEFAULT_GC_THRESHOLD, DENSE_CUTOFF_MAX,
};
pub use store::{SharedStore, SharedStoreStats};
pub use table::{CIdx, ComplexTable};
