//! Standard single-qubit gate matrices.
//!
//! The decision-diagram package builds multi-qubit operators out of 2x2
//! matrices plus control qubits (see [`DdPackage::make_gate`]). This module
//! provides the usual gate library as plain [`GateMatrix`] values.
//!
//! [`DdPackage::make_gate`]: crate::DdPackage::make_gate

use crate::complex::Complex;
use std::f64::consts::FRAC_1_SQRT_2;
use std::sync::OnceLock;

/// A dense 2x2 complex matrix in row-major order: `m[row][column]`.
pub type GateMatrix = [[Complex; 2]; 2];

/// Number of precomputed twiddle levels: `e^{±iπ/2^k}` for `k < 64`.
const TWIDDLE_LEVELS: usize = 64;

const MANTISSA_MASK: u64 = 0x000F_FFFF_FFFF_FFFF;
const EXP_MASK: u64 = 0x7FF0_0000_0000_0000;

/// Detects `θ == ±π/2^k` *bit-exactly*: `π/2^k` has the mantissa of π with
/// the exponent decremented `k` times, which is precisely the form the
/// QFT/QPE controlled-rotation ladders produce (`π / 2^distance` evaluated
/// in `f64`). Returns `(k, sign-is-negative)`.
fn pow2_pi_index(theta: f64) -> Option<(usize, bool)> {
    let pi_bits = std::f64::consts::PI.to_bits();
    let bits = theta.to_bits();
    let neg = bits >> 63 == 1;
    let mag = bits & !(1u64 << 63);
    if mag & MANTISSA_MASK != pi_bits & MANTISSA_MASK {
        return None;
    }
    let pi_exp = (pi_bits & EXP_MASK) >> 52;
    let exp = (mag & EXP_MASK) >> 52;
    if exp > pi_exp || exp == 0 {
        return None;
    }
    let k = (pi_exp - exp) as usize;
    (k < TWIDDLE_LEVELS).then_some((k, neg))
}

/// `[k][0]` = `e^{+iπ/2^k}`, `[k][1]` = `e^{-iπ/2^k}`. Both signs are
/// computed explicitly with [`Complex::from_phase`] on the exact input bit
/// pattern — no symmetry assumption about the libm `sin`/`cos` — so a table
/// hit is bit-identical to the uncached call by construction.
fn twiddles() -> &'static [[Complex; 2]; TWIDDLE_LEVELS] {
    static TABLE: OnceLock<[[Complex; 2]; TWIDDLE_LEVELS]> = OnceLock::new();
    TABLE.get_or_init(|| {
        std::array::from_fn(|k| {
            let angle = std::f64::consts::PI / (1u128 << k) as f64;
            [Complex::from_phase(angle), Complex::from_phase(-angle)]
        })
    })
}

/// [`Complex::from_phase`] served from the precomputed twiddle table when
/// `θ` is bit-exactly `±π/2^k` (the QFT/QPE controlled-rotation angles);
/// falls back to the live `sin`/`cos` evaluation otherwise. The result is
/// bit-identical either way, so gate-cache keys (which hash raw matrix
/// bits) are unaffected by which path served a build.
pub fn from_phase_cached(theta: f64) -> Complex {
    match pow2_pi_index(theta) {
        Some((k, neg)) => {
            obs::metrics::incr(obs::metrics::DD_TWIDDLE_HITS);
            twiddles()[k][neg as usize]
        }
        None => Complex::from_phase(theta),
    }
}

/// Identity gate.
pub fn id() -> GateMatrix {
    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]]
}

/// Hadamard gate.
pub fn h() -> GateMatrix {
    let s = Complex::real(FRAC_1_SQRT_2);
    [[s, s], [s, -s]]
}

/// Pauli-X (NOT) gate.
pub fn x() -> GateMatrix {
    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
}

/// Pauli-Y gate.
pub fn y() -> GateMatrix {
    [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]]
}

/// Pauli-Z gate.
pub fn z() -> GateMatrix {
    [
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, -Complex::ONE],
    ]
}

/// Phase gate S = diag(1, i).
pub fn s() -> GateMatrix {
    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::I]]
}

/// Inverse phase gate S† = diag(1, -i).
pub fn sdg() -> GateMatrix {
    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, -Complex::I]]
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> GateMatrix {
    [
        [Complex::ONE, Complex::ZERO],
        [
            Complex::ZERO,
            from_phase_cached(std::f64::consts::FRAC_PI_4),
        ],
    ]
}

/// Inverse T gate = diag(1, e^{-iπ/4}).
pub fn tdg() -> GateMatrix {
    [
        [Complex::ONE, Complex::ZERO],
        [
            Complex::ZERO,
            from_phase_cached(-std::f64::consts::FRAC_PI_4),
        ],
    ]
}

/// Phase gate P(θ) = diag(1, e^{iθ}).
pub fn phase(theta: f64) -> GateMatrix {
    [
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, from_phase_cached(theta)],
    ]
}

/// Rotation about the X axis by angle θ.
pub fn rx(theta: f64) -> GateMatrix {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    [[c, s], [s, c]]
}

/// Rotation about the Y axis by angle θ.
pub fn ry(theta: f64) -> GateMatrix {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::real((theta / 2.0).sin());
    [[c, -s], [s, c]]
}

/// Rotation about the Z axis by angle θ.
pub fn rz(theta: f64) -> GateMatrix {
    [
        [from_phase_cached(-theta / 2.0), Complex::ZERO],
        [Complex::ZERO, from_phase_cached(theta / 2.0)],
    ]
}

/// Square root of X.
pub fn sx() -> GateMatrix {
    let a = Complex::new(0.5, 0.5);
    let b = Complex::new(0.5, -0.5);
    [[a, b], [b, a]]
}

/// Inverse square root of X.
pub fn sxdg() -> GateMatrix {
    let a = Complex::new(0.5, -0.5);
    let b = Complex::new(0.5, 0.5);
    [[a, b], [b, a]]
}

/// General single-qubit gate U3(θ, φ, λ) following the OpenQASM convention.
pub fn u3(theta: f64, phi: f64, lambda: f64) -> GateMatrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    [
        [Complex::real(c), -Complex::from_phase(lambda) * s],
        [
            Complex::from_phase(phi) * s,
            Complex::from_phase(phi + lambda) * c,
        ],
    ]
}

/// The raw bit patterns of a gate matrix, row-major `(re, im)` interleaved.
///
/// Used as the hashable part of the package's gate-diagram cache key: two
/// matrices built from the same parameters produce bit-identical entries, so
/// exact bit equality is the right cache criterion (near-misses simply build
/// a fresh diagram).
pub(crate) fn matrix_bits(m: &GateMatrix) -> [u64; 8] {
    [
        m[0][0].re.to_bits(),
        m[0][0].im.to_bits(),
        m[0][1].re.to_bits(),
        m[0][1].im.to_bits(),
        m[1][0].re.to_bits(),
        m[1][0].im.to_bits(),
        m[1][1].re.to_bits(),
        m[1][1].im.to_bits(),
    ]
}

/// Complex-conjugate transpose of a 2x2 matrix.
pub fn adjoint(m: &GateMatrix) -> GateMatrix {
    [
        [m[0][0].conj(), m[1][0].conj()],
        [m[0][1].conj(), m[1][1].conj()],
    ]
}

/// Product `a * b` of two 2x2 matrices.
pub fn matmul(a: &GateMatrix, b: &GateMatrix) -> GateMatrix {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, entry) in row.iter_mut().enumerate() {
            *entry = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// Returns `true` when `m` is unitary within the package tolerance.
pub fn is_unitary(m: &GateMatrix) -> bool {
    let prod = matmul(&adjoint(m), m);
    prod[0][0].is_one() && prod[1][1].is_one() && prod[0][1].is_zero() && prod[1][0].is_zero()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &GateMatrix, b: &GateMatrix) -> bool {
        a.iter()
            .flatten()
            .zip(b.iter().flatten())
            .all(|(x, y)| x.approx_eq(*y))
    }

    #[test]
    fn standard_gates_are_unitary() {
        for m in [
            id(),
            h(),
            x(),
            y(),
            z(),
            s(),
            sdg(),
            t(),
            tdg(),
            sx(),
            sxdg(),
            phase(0.3),
            rx(1.2),
            ry(-0.7),
            rz(2.9),
            u3(0.4, 1.1, -2.3),
        ] {
            assert!(is_unitary(&m), "gate {m:?} is not unitary");
        }
    }

    #[test]
    fn involutions_square_to_identity() {
        for m in [x(), y(), z(), h()] {
            assert!(approx_eq(&matmul(&m, &m), &id()));
        }
    }

    #[test]
    fn adjoint_pairs_cancel() {
        assert!(approx_eq(&matmul(&s(), &sdg()), &id()));
        assert!(approx_eq(&matmul(&t(), &tdg()), &id()));
        assert!(approx_eq(&matmul(&sx(), &sxdg()), &id()));
        let m = phase(0.9);
        assert!(approx_eq(&matmul(&adjoint(&m), &m), &id()));
    }

    #[test]
    fn s_is_two_t_gates() {
        assert!(approx_eq(&matmul(&t(), &t()), &s()));
    }

    #[test]
    fn phase_matches_special_cases() {
        assert!(approx_eq(&phase(std::f64::consts::PI), &z()));
        assert!(approx_eq(&phase(std::f64::consts::FRAC_PI_2), &s()));
    }

    #[test]
    fn u3_reduces_to_named_gates() {
        use std::f64::consts::PI;
        // U3(π, 0, π) = X
        assert!(approx_eq(&u3(PI, 0.0, PI), &x()));
        // U3(π/2, 0, π) = H
        assert!(approx_eq(&u3(PI / 2.0, 0.0, PI), &h()));
    }

    #[test]
    fn twiddle_table_is_bit_identical_to_from_phase() {
        for k in 0..64u32 {
            let angle = std::f64::consts::PI / (1u128 << k) as f64;
            for theta in [angle, -angle] {
                let cached = from_phase_cached(theta);
                let live = Complex::from_phase(theta);
                assert_eq!(
                    (cached.re.to_bits(), cached.im.to_bits()),
                    (live.re.to_bits(), live.im.to_bits()),
                    "twiddle mismatch at k={k}, theta={theta}"
                );
            }
        }
    }

    #[test]
    fn non_twiddle_angles_pass_through() {
        // Not of the form ±π/2^k: scaled, offset, zero, and non-finite.
        for theta in [0.0, 0.3, -1.7, 3.0 * std::f64::consts::FRAC_PI_4, 1e-300] {
            let cached = from_phase_cached(theta);
            let live = Complex::from_phase(theta);
            assert_eq!(cached.re.to_bits(), live.re.to_bits());
            assert_eq!(cached.im.to_bits(), live.im.to_bits());
        }
    }

    #[test]
    fn qft_ladder_angles_hit_the_table() {
        // The exact expression the QFT/QPE builders evaluate per distance.
        for distance in 0..40u32 {
            let theta = std::f64::consts::PI / (1u128 << distance.min(127)) as f64;
            assert!(
                pow2_pi_index(theta).is_some(),
                "QFT angle at distance {distance} missed the twiddle table"
            );
        }
    }

    #[test]
    fn rz_differs_from_phase_by_global_phase() {
        let theta = 0.77;
        let a = rz(theta);
        let b = phase(theta);
        // a = e^{-iθ/2} * b
        let factor = Complex::from_phase(-theta / 2.0);
        for i in 0..2 {
            for j in 0..2 {
                assert!(a[i][j].approx_eq(factor * b[i][j]));
            }
        }
    }
}
