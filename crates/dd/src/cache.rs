//! Fixed-size lossy caches and open-addressed unique tables.
//!
//! The decision-diagram package performs enormous numbers of memoisation
//! lookups. Growing `HashMap`s without bound — the seed implementation — is
//! both slower (rehashing, pointer chasing) and unbounded in memory. This
//! module provides the two specialised structures mature DD packages use
//! instead:
//!
//! * [`LossyCache`]: a fixed-size, power-of-two, direct-mapped cache with a
//!   single probe per lookup. A colliding insert simply overwrites the slot;
//!   an evicted entry is recomputed on demand, never wrong. Each cache keeps
//!   hit/lookup counters for telemetry.
//! * [`UniqueTable`]: an open-addressed (linear probing) hash set of node
//!   ids used for hash-consing, one per qubit level. Kept at a load factor
//!   of at most ½ and rebuilt wholesale after garbage collection, so no
//!   tombstones are needed.

use crate::hash::fx_hash;
use std::hash::Hash;

/// Hit/lookup counters of one cache, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Stable table name (e.g. `"mat_vec"`).
    pub name: &'static str,
    /// Lookups since package creation (cleared tables keep their counters).
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
}

impl CacheCounters {
    /// Hit rate in `[0, 1]`, or `None` before the first lookup.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.lookups == 0 {
            None
        } else {
            Some(self.hits as f64 / self.lookups as f64)
        }
    }
}

/// A direct-mapped, overwrite-on-collision memoisation cache.
///
/// The slot array is allocated lazily on the first insert and starts small:
/// it quadruples (dropping the recomputable contents) whenever the insert
/// traffic since the last resize exceeds twice the capacity, up to the
/// configured bound. Short-lived packages therefore pay kilobytes, while
/// miter-scale workloads quickly reach the full fixed size.
#[derive(Debug, Clone)]
pub(crate) struct LossyCache<K, V> {
    name: &'static str,
    max_bits: u32,
    slots: Vec<Option<(K, V)>>,
    inserts: u64,
    lookups: u64,
    hits: u64,
}

/// Initial slot count (log2) of a lossy cache.
const MIN_BITS: u32 = 8;

impl<K: Eq + Hash + Clone, V: Copy> LossyCache<K, V> {
    /// Creates a cache bounded at `2^max_bits` slots. Bounds *below*
    /// [`MIN_BITS`] are honoured exactly (the cache never grows), which lets
    /// tests apply maximum eviction pressure.
    pub fn new(name: &'static str, max_bits: u32) -> Self {
        LossyCache {
            name,
            max_bits,
            slots: Vec::new(),
            inserts: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// Single-probe lookup under the caller-computed hash.
    #[inline]
    pub fn get_by(&mut self, hash: u64, eq: impl Fn(&K) -> bool) -> Option<V> {
        self.lookups += 1;
        if self.slots.is_empty() {
            return None;
        }
        match &self.slots[(hash as usize) & (self.slots.len() - 1)] {
            Some((k, v)) if eq(k) => {
                self.hits += 1;
                Some(*v)
            }
            _ => None,
        }
    }

    /// Single-probe lookup.
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.get_by(fx_hash(key), |k| k == key)
    }

    /// Inserts under the caller-computed hash, overwriting the slot.
    #[inline]
    pub fn insert_hashed(&mut self, hash: u64, key: K, value: V) {
        if self.slots.is_empty() {
            self.slots = vec![None; 1usize << MIN_BITS.min(self.max_bits)];
        } else if self.inserts >= self.slots.len() as u64 * 2
            && self.slots.len() < 1usize << self.max_bits
        {
            let grown = (self.slots.len() * 4).min(1usize << self.max_bits);
            self.slots = vec![None; grown];
            self.inserts = 0;
        }
        self.inserts += 1;
        let slot = (hash as usize) & (self.slots.len() - 1);
        self.slots[slot] = Some((key, value));
    }

    /// Inserts, overwriting whatever occupied the slot.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_hashed(fx_hash(&key), key, value);
    }

    /// Drops all entries but keeps the slot allocation and the counters.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }

    /// Iterates over the live entries (used to treat cached gate diagrams as
    /// garbage-collection roots).
    pub fn entries(&self) -> impl Iterator<Item = &(K, V)> {
        self.slots.iter().flatten()
    }

    /// This cache's counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            name: self.name,
            lookups: self.lookups,
            hits: self.hits,
        }
    }
}

/// Sentinel marking an empty unique-table slot.
const EMPTY: u32 = u32::MAX;

/// Open-addressed hash set of node ids for one qubit level.
///
/// The table only stores arena indices; key equality is delegated to the
/// caller (who owns the node arena), keeping this structure borrow-friendly.
#[derive(Debug, Clone)]
pub(crate) struct UniqueTable {
    slots: Vec<u32>,
    len: usize,
}

impl UniqueTable {
    pub fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; 64],
            len: 0,
        }
    }

    /// Finds the id of a node equal (per `eq`) to the probe key.
    #[inline]
    pub fn find(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            match self.slots[idx] {
                EMPTY => return None,
                id => {
                    if eq(id) {
                        return Some(id);
                    }
                }
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts an id not currently present, growing at load factor ½.
    ///
    /// `rehash` recomputes the hash of a stored id during growth.
    pub fn insert(&mut self, hash: u64, id: u32, rehash: impl Fn(u32) -> u64) {
        if (self.len + 1) * 2 > self.slots.len() {
            let doubled = self.slots.len() * 2;
            let old = std::mem::replace(&mut self.slots, vec![EMPTY; doubled]);
            for stored in old {
                if stored != EMPTY {
                    self.place(rehash(stored), stored);
                }
            }
        }
        self.place(hash, id);
        self.len += 1;
    }

    #[inline]
    fn place(&mut self, hash: u64, id: u32) {
        let mask = self.slots.len() - 1;
        let mut idx = (hash as usize) & mask;
        while self.slots[idx] != EMPTY {
            idx = (idx + 1) & mask;
        }
        self.slots[idx] = id;
    }

    /// Empties the table, keeping its allocation (used before the
    /// rebuild-after-sweep pass of the garbage collector).
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossy_cache_hits_and_overwrites() {
        let mut cache: LossyCache<u64, u32> = LossyCache::new("test", 2);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        // Force a collision: with 4 slots, keys hashing to the same slot
        // overwrite each other. Insert many keys and check the survivors are
        // still correct.
        for k in 0..32u64 {
            cache.insert(k, k as u32 * 2);
        }
        for k in 0..32u64 {
            if let Some(v) = cache.get(&k) {
                assert_eq!(v, k as u32 * 2);
            }
        }
        let counters = cache.counters();
        assert!(counters.lookups >= 33);
        assert!(counters.hits >= 1);
        assert!(counters.hit_rate().unwrap() > 0.0);
    }

    #[test]
    fn lossy_cache_clear_keeps_counters() {
        let mut cache: LossyCache<u64, u32> = LossyCache::new("test", 4);
        cache.insert(7, 7);
        assert_eq!(cache.get(&7), Some(7));
        cache.clear();
        assert_eq!(cache.get(&7), None);
        assert_eq!(cache.counters().hits, 1);
        assert_eq!(cache.counters().lookups, 2);
    }

    #[test]
    fn unique_table_insert_find_grow() {
        let mut table = UniqueTable::new();
        let keys: Vec<u64> = (0..200).collect();
        for &k in &keys {
            let hash = fx_hash(&k);
            assert_eq!(table.find(hash, |id| keys[id as usize] == k), None);
            table.insert(hash, k as u32, |id| fx_hash(&keys[id as usize]));
        }
        for &k in &keys {
            let hash = fx_hash(&k);
            assert_eq!(
                table.find(hash, |id| keys[id as usize] == k),
                Some(k as u32)
            );
        }
        table.clear();
        assert_eq!(table.find(fx_hash(&3u64), |_| true), None);
    }
}
