//! Node and edge types of the decision-diagram package.
//!
//! Vector decision diagrams (vDDs) represent `2^n`-dimensional state vectors;
//! their nodes have two successor edges (qubit value 0 and 1). Matrix
//! decision diagrams (mDDs) represent `2^n x 2^n` operators; their nodes have
//! four successor edges indexed by `(row bit, column bit)` in the order
//! `00, 01, 10, 11`.
//!
//! Every non-zero edge at qubit level `q` points to a node whose variable is
//! exactly `q` (levels are never skipped); the only exceptions are the
//! canonical zero edge and terminal edges below level 0. This keeps all
//! recursive operations in [`DdPackage`](crate::DdPackage) level-synchronous.

use crate::table::CIdx;

/// Identifier of a node inside the package arena.
///
/// The all-ones value is reserved for the terminal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The terminal (leaf) node shared by all diagrams.
    pub const TERMINAL: NodeId = NodeId(u32::MAX);

    /// Returns `true` if this is the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == NodeId::TERMINAL
    }

    /// Raw arena offset; only meaningful for non-terminal nodes.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Edge of a vector decision diagram: a target node and a complex weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VEdge {
    /// Target node.
    pub node: NodeId,
    /// Interned complex weight multiplied along the path.
    pub weight: CIdx,
}

impl VEdge {
    /// The canonical zero edge (terminal node, weight 0).
    pub const ZERO: VEdge = VEdge {
        node: NodeId::TERMINAL,
        weight: CIdx::ZERO,
    };

    /// The terminal edge with weight one.
    pub const ONE: VEdge = VEdge {
        node: NodeId::TERMINAL,
        weight: CIdx::ONE,
    };

    /// Creates an edge from its parts.
    #[inline]
    pub const fn new(node: NodeId, weight: CIdx) -> Self {
        VEdge { node, weight }
    }

    /// Terminal edge carrying `weight`.
    #[inline]
    pub const fn terminal(weight: CIdx) -> Self {
        VEdge {
            node: NodeId::TERMINAL,
            weight,
        }
    }

    /// Returns `true` for the canonical zero edge.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Returns `true` when the edge points to the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.node.is_terminal()
    }

    /// Returns a copy of this edge with a different weight.
    #[inline]
    pub fn with_weight(self, weight: CIdx) -> Self {
        VEdge {
            node: self.node,
            weight,
        }
    }
}

/// Edge of a matrix decision diagram: a target node and a complex weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MEdge {
    /// Target node.
    pub node: NodeId,
    /// Interned complex weight multiplied along the path.
    pub weight: CIdx,
}

impl MEdge {
    /// The canonical zero edge (terminal node, weight 0).
    pub const ZERO: MEdge = MEdge {
        node: NodeId::TERMINAL,
        weight: CIdx::ZERO,
    };

    /// The terminal edge with weight one.
    pub const ONE: MEdge = MEdge {
        node: NodeId::TERMINAL,
        weight: CIdx::ONE,
    };

    /// Creates an edge from its parts.
    #[inline]
    pub const fn new(node: NodeId, weight: CIdx) -> Self {
        MEdge { node, weight }
    }

    /// Terminal edge carrying `weight`.
    #[inline]
    pub const fn terminal(weight: CIdx) -> Self {
        MEdge {
            node: NodeId::TERMINAL,
            weight,
        }
    }

    /// Returns `true` for the canonical zero edge.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }

    /// Returns `true` when the edge points to the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.node.is_terminal()
    }

    /// Returns a copy of this edge with a different weight.
    #[inline]
    pub fn with_weight(self, weight: CIdx) -> Self {
        MEdge {
            node: self.node,
            weight,
        }
    }
}

/// Variable value marking a freed arena slot awaiting reuse.
///
/// Real nodes always have `var < n_qubits ≤ u16::MAX`, so the all-ones value
/// can never collide with a live node.
pub(crate) const FREE_VAR: u16 = u16::MAX;

/// A vector decision-diagram node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VNode {
    /// Qubit index this node decides on (0 = least-significant qubit).
    pub var: u16,
    /// Successor edges for qubit value 0 and 1.
    pub children: [VEdge; 2],
}

impl VNode {
    /// Sentinel stored in freed arena slots.
    pub(crate) const FREE: VNode = VNode {
        var: FREE_VAR,
        children: [VEdge::ZERO; 2],
    };

    /// Returns `true` when this arena slot is on the free list.
    #[inline]
    pub(crate) fn is_free(&self) -> bool {
        self.var == FREE_VAR
    }
}

/// A matrix decision-diagram node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MNode {
    /// Qubit index this node decides on (0 = least-significant qubit).
    pub var: u16,
    /// Successor edges indexed by `(row bit, column bit)`: `00, 01, 10, 11`.
    pub children: [MEdge; 4],
}

impl MNode {
    /// Sentinel stored in freed arena slots.
    pub(crate) const FREE: MNode = MNode {
        var: FREE_VAR,
        children: [MEdge::ZERO; 4],
    };

    /// Returns `true` when this arena slot is on the free list.
    #[inline]
    pub(crate) fn is_free(&self) -> bool {
        self.var == FREE_VAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_predicates() {
        assert!(NodeId::TERMINAL.is_terminal());
        assert!(!NodeId(0).is_terminal());
        assert!(VEdge::ZERO.is_zero());
        assert!(VEdge::ZERO.is_terminal());
        assert!(MEdge::ONE.is_terminal());
        assert!(!MEdge::ONE.is_zero());
    }

    #[test]
    fn with_weight_preserves_node() {
        let e = VEdge::new(NodeId(7), CIdx::ONE);
        let f = e.with_weight(CIdx::ZERO);
        assert_eq!(f.node, NodeId(7));
        assert!(f.weight.is_zero());
    }
}
