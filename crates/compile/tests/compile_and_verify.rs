//! End-to-end compilation + verification, reproducing the use case of the
//! paper's Section 2.3 / Fig. 1b: compile an algorithm circuit to a device
//! and use equivalence checking to confirm the functionality was preserved.

use algorithms::{bv, ghz, qft, qpe};
use circuit::QuantumCircuit;
use compile::{Compiler, CompilerOptions, CouplingMap, NativeBasis, Target};
use proptest::prelude::*;
use qcec::{check_functional_equivalence, Configuration};
use sim::{extract_distribution, ExtractionConfig};

/// Pads a circuit with idle qubits so it matches the device register.
fn pad(circuit: &QuantumCircuit, n_physical: usize) -> QuantumCircuit {
    circuit.map_qubits(n_physical, |q| q)
}

/// Compiles `circuit` for `target` and checks functional equivalence against
/// the padded original.
fn compile_and_check(circuit: &QuantumCircuit, target: Target) {
    let compiled = Compiler::new(target.clone())
        .compile(circuit)
        .expect("compilation succeeds");
    let reference = pad(
        &circuit.without_measurements(),
        target.coupling.num_qubits(),
    );
    let check = check_functional_equivalence(
        &reference,
        &compiled.circuit.without_measurements(),
        &Configuration::default(),
    )
    .expect("equivalence check runs");
    assert!(
        check.equivalence.considered_equivalent(),
        "compiled {} is not equivalent on {}",
        circuit.name(),
        target.coupling.name()
    );
}

#[test]
fn qpe_compiles_to_london_and_stays_equivalent() {
    // The paper's running example (Fig. 1a/1b): 3-bit QPE of U = P(3π/8),
    // compiled to the 5-qubit IBMQ London device.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let static_qpe = qpe::qpe_static(phi, 3, false);
    compile_and_check(&static_qpe, Target::ibmq_london());
}

#[test]
fn qpe_compiles_to_a_line_and_stays_equivalent() {
    let phi = qpe::random_exact_phase(3, 99);
    let static_qpe = qpe::qpe_static(phi, 3, false);
    compile_and_check(&static_qpe, Target::line(4));
}

#[test]
fn ghz_compiles_to_every_standard_topology() {
    let circuit = ghz::ghz(4, false);
    for target in [
        Target::ibmq_london(),
        Target::line(4),
        Target::all_to_all(4),
        Target {
            coupling: CouplingMap::ring(5),
            basis: NativeBasis::IbmRzSxX,
        },
        Target {
            coupling: CouplingMap::grid(2, 2),
            basis: NativeBasis::IbmRzSxX,
        },
    ] {
        compile_and_check(&circuit, target);
    }
}

#[test]
fn qft_compiles_to_london_and_stays_equivalent() {
    let circuit = qft::qft_static(4, None, false);
    compile_and_check(&circuit, Target::ibmq_london());
}

#[test]
fn bv_compiles_to_a_line_and_stays_equivalent() {
    let hidden = [true, false, true, true];
    let circuit = bv::bv_static(&hidden, false);
    compile_and_check(&circuit, Target::line(5));
}

#[test]
fn unoptimized_and_optimized_compilations_are_equivalent_to_each_other() {
    let circuit = qft::qft_static(3, None, false);
    let target = Target::ibmq_london();
    let optimized = Compiler::new(target.clone()).compile(&circuit).unwrap();
    let unoptimized = Compiler::with_options(
        target,
        CompilerOptions {
            optimize: false,
            restore_layout: true,
        },
    )
    .compile(&circuit)
    .unwrap();
    assert!(optimized.gate_count() <= unoptimized.gate_count());
    let check = check_functional_equivalence(
        &optimized.circuit,
        &unoptimized.circuit,
        &Configuration::default(),
    )
    .unwrap();
    assert!(check.equivalence.considered_equivalent());
}

#[test]
fn compiled_dynamic_iqpe_produces_the_same_outcome_distribution() {
    // Scheme 2 on a *compiled* dynamic circuit: the measurement-outcome
    // distribution must survive compilation.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let iqpe = qpe::iqpe_dynamic(phi, 3);
    let compiled = Compiler::new(Target::ibmq_london()).compile(&iqpe).unwrap();
    let original = extract_distribution(&iqpe, &ExtractionConfig::default()).unwrap();
    let after = extract_distribution(&compiled.circuit, &ExtractionConfig::default()).unwrap();
    assert!(
        original.distribution.approx_eq(&after.distribution, 1e-6),
        "distribution changed by compilation"
    );
}

#[test]
fn compiled_dynamic_bv_produces_the_same_outcome_distribution() {
    let hidden = [true, true, false, true];
    let dynamic = bv::bv_dynamic(&hidden);
    let compiled = Compiler::new(Target::line(2)).compile(&dynamic).unwrap();
    let original = extract_distribution(&dynamic, &ExtractionConfig::default()).unwrap();
    let after = extract_distribution(&compiled.circuit, &ExtractionConfig::default()).unwrap();
    assert!(original.distribution.approx_eq(&after.distribution, 1e-6));
}

#[test]
fn an_injected_compiler_bug_is_caught_by_the_checker() {
    // Simulate a faulty compiler: drop one gate from a correct compilation.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let circuit = qpe::qpe_static(phi, 3, false);
    let target = Target::ibmq_london();
    let compiled = Compiler::new(target.clone()).compile(&circuit).unwrap();
    let mut broken =
        QuantumCircuit::new(compiled.circuit.num_qubits(), compiled.circuit.num_bits());
    let dropped = compiled
        .circuit
        .iter()
        .position(|op| op.qubits().len() == 2)
        .expect("compiled circuit contains a CX");
    for (index, op) in compiled.circuit.iter().enumerate() {
        if index != dropped {
            broken.push(op.clone());
        }
    }
    let reference = pad(&circuit, target.coupling.num_qubits());
    let check =
        check_functional_equivalence(&reference, &broken, &Configuration::default()).unwrap();
    assert!(!check.equivalence.considered_equivalent());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random unitary circuits survive compilation to a line device.
    #[test]
    fn random_circuits_compile_and_verify(seed in 0u64..2000, len in 1usize..20) {
        let circuit = algorithms::random::random_unitary_circuit(3, len, seed);
        let target = Target::line(3);
        let compiled = Compiler::new(target).compile(&circuit).unwrap();
        let check = check_functional_equivalence(
            &circuit,
            &compiled.circuit,
            &Configuration::default(),
        )
        .unwrap();
        prop_assert!(check.equivalence.considered_equivalent());
    }

    /// Random dynamic circuits keep their outcome distribution under
    /// compilation.
    #[test]
    fn random_dynamic_circuits_keep_their_distribution(seed in 0u64..2000, len in 4usize..20) {
        let circuit = algorithms::random::random_dynamic_circuit(3, 2, len, seed);
        let compiled = Compiler::new(Target::line(3)).compile(&circuit).unwrap();
        let original = extract_distribution(&circuit, &ExtractionConfig::default()).unwrap();
        let after = extract_distribution(&compiled.circuit, &ExtractionConfig::default()).unwrap();
        prop_assert!(original.distribution.approx_eq(&after.distribution, 1e-6));
    }
}
