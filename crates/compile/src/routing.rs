//! SWAP-insertion routing onto a coupling map.

use crate::coupling::CouplingMap;
use crate::error::CompileError;
use crate::layout::Layout;
use circuit::{OpKind, Operation, QuantumCircuit, QuantumControl};

/// Result of the routing pass.
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// The routed circuit, acting on the device's physical qubits.
    pub circuit: QuantumCircuit,
    /// Layout before the first operation.
    pub initial_layout: Layout,
    /// Layout after the last operation (equal to the initial layout when
    /// `restore_layout` was requested).
    pub final_layout: Layout,
    /// Number of SWAP operations inserted (each SWAP is three CX gates).
    pub swaps_inserted: usize,
}

/// Routes `circuit` onto `coupling`, inserting SWAPs so that every two-qubit
/// gate acts on adjacent physical qubits.
///
/// The input must already be decomposed into single-qubit gates and CX (run
/// [`decompose_controls`](crate::decompose_controls) first). When
/// `restore_layout` is `true`, additional SWAPs are appended so that the
/// final layout equals the initial one — the routed circuit is then
/// functionally equivalent (up to idle padding qubits) to the original,
/// which is how the compilation experiments verify it.
///
/// # Errors
///
/// * [`CompileError::NotEnoughPhysicalQubits`] /
///   [`CompileError::DisconnectedCouplingMap`] when the device cannot host
///   the circuit,
/// * [`CompileError::UnroutableOperation`] when an operation acts on more
///   than two qubits.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use compile::{route, CouplingMap, Layout};
///
/// let mut qc = QuantumCircuit::new(3, 0);
/// qc.cx(0, 2); // not adjacent on a line
/// let coupling = CouplingMap::line(3);
/// let layout = Layout::trivial(3, 3);
/// let routed = route(&qc, &coupling, layout, true)?;
/// assert!(routed.swaps_inserted > 0);
/// assert!(routed.final_layout.is_trivial());
/// # Ok::<(), compile::CompileError>(())
/// ```
pub fn route(
    circuit: &QuantumCircuit,
    coupling: &CouplingMap,
    initial_layout: Layout,
    restore_layout: bool,
) -> Result<RoutingResult, CompileError> {
    coupling.check_capacity(circuit.num_qubits())?;
    if initial_layout.num_logical() != circuit.num_qubits()
        || initial_layout.num_physical() != coupling.num_qubits()
    {
        return Err(CompileError::InvalidLayout {
            reason: format!(
                "layout maps {} logical to {} physical qubits, circuit has {} and device {}",
                initial_layout.num_logical(),
                initial_layout.num_physical(),
                circuit.num_qubits(),
                coupling.num_qubits()
            ),
        });
    }

    let mut out = QuantumCircuit::with_name(
        coupling.num_qubits(),
        circuit.num_bits(),
        format!("{}_on_{}", circuit.name(), coupling.name()),
    );
    let mut layout = initial_layout.clone();
    let mut swaps = 0usize;

    for op in circuit.iter() {
        match &op.kind {
            OpKind::Barrier => out.push(Operation::barrier()),
            OpKind::Measure { qubit, bit } => {
                let mut mapped = Operation::measure(layout.physical(*qubit), *bit);
                mapped.condition = op.condition;
                out.push(mapped);
            }
            OpKind::Reset { qubit } => {
                let mut mapped = Operation::reset(layout.physical(*qubit));
                mapped.condition = op.condition;
                out.push(mapped);
            }
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                if controls.len() > 1 {
                    return Err(CompileError::UnroutableOperation {
                        operation: op.to_string(),
                    });
                }
                if let Some(control) = controls.first() {
                    let mut p_control = layout.physical(control.qubit);
                    let p_target = layout.physical(*target);
                    if !coupling.are_adjacent(p_control, p_target) {
                        let path = coupling
                            .shortest_path(p_control, p_target)
                            .ok_or(CompileError::DisconnectedCouplingMap)?;
                        // Move the control along the path until it is
                        // adjacent to the target.
                        for window in path.windows(2).take(path.len() - 2) {
                            emit_swap(&mut out, window[0], window[1]);
                            layout.swap_physical(window[0], window[1]);
                            swaps += 1;
                        }
                        p_control = path[path.len() - 2];
                    }
                    let mut mapped = Operation::unitary(
                        *gate,
                        layout.physical(*target),
                        vec![QuantumControl {
                            qubit: p_control,
                            positive: control.positive,
                        }],
                    );
                    mapped.condition = op.condition;
                    out.push(mapped);
                } else {
                    let mut mapped = Operation::unitary(*gate, layout.physical(*target), vec![]);
                    mapped.condition = op.condition;
                    out.push(mapped);
                }
            }
        }
    }

    if restore_layout && layout != initial_layout {
        swaps += restore(&mut out, coupling, &mut layout, &initial_layout);
    }

    Ok(RoutingResult {
        circuit: out,
        initial_layout,
        final_layout: layout,
        swaps_inserted: swaps,
    })
}

/// Emits a SWAP between adjacent physical qubits as three CX gates.
fn emit_swap(out: &mut QuantumCircuit, a: usize, b: usize) {
    out.swap(a, b);
}

/// Exchanges the occupants of two (possibly distant) physical qubits using
/// adjacent SWAPs only, leaving every other qubit in place. Returns the
/// number of SWAPs emitted.
fn distant_swap(
    out: &mut QuantumCircuit,
    coupling: &CouplingMap,
    layout: &mut Layout,
    a: usize,
    b: usize,
) -> usize {
    let path = coupling
        .shortest_path(a, b)
        .expect("coupling map connectivity was checked");
    let mut swaps = 0;
    // Walk forward … (moves the occupant of `a` to `b`)
    for window in path.windows(2) {
        emit_swap(out, window[0], window[1]);
        layout.swap_physical(window[0], window[1]);
        swaps += 1;
    }
    // … and backward over the interior (restores everything else).
    for window in path.windows(2).rev().skip(1) {
        emit_swap(out, window[0], window[1]);
        layout.swap_physical(window[0], window[1]);
        swaps += 1;
    }
    swaps
}

/// Appends SWAPs so that `layout` becomes `target_layout`.
fn restore(
    out: &mut QuantumCircuit,
    coupling: &CouplingMap,
    layout: &mut Layout,
    target_layout: &Layout,
) -> usize {
    let mut swaps = 0;
    for logical in 0..layout.num_logical() {
        let home = target_layout.physical(logical);
        let current = layout.physical(logical);
        if current != home {
            swaps += distant_swap(out, coupling, layout, current, home);
        }
    }
    debug_assert_eq!(layout, target_layout);
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::StandardGate;

    fn two_qubit_ops_are_adjacent(circuit: &QuantumCircuit, coupling: &CouplingMap) -> bool {
        circuit.iter().all(|op| {
            let qubits = op.qubits();
            qubits.len() < 2 || coupling.are_adjacent(qubits[0], qubits[1])
        })
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0).cx(0, 1).cx(1, 2);
        let coupling = CouplingMap::line(3);
        let routed = route(&qc, &coupling, Layout::trivial(3, 3), true).unwrap();
        assert_eq!(routed.swaps_inserted, 0);
        assert_eq!(routed.circuit.len(), qc.len());
        assert!(routed.final_layout.is_trivial());
    }

    #[test]
    fn distant_cx_gets_routed() {
        let mut qc = QuantumCircuit::new(4, 0);
        qc.cx(0, 3);
        let coupling = CouplingMap::line(4);
        let routed = route(&qc, &coupling, Layout::trivial(4, 4), false).unwrap();
        assert!(routed.swaps_inserted >= 2);
        assert!(two_qubit_ops_are_adjacent(&routed.circuit, &coupling));
        assert!(!routed.final_layout.is_trivial());
    }

    #[test]
    fn restore_layout_returns_to_the_initial_mapping() {
        let mut qc = QuantumCircuit::new(4, 0);
        qc.cx(0, 3).cx(3, 1).cx(2, 0);
        let coupling = CouplingMap::line(4);
        let routed = route(&qc, &coupling, Layout::trivial(4, 4), true).unwrap();
        assert!(two_qubit_ops_are_adjacent(&routed.circuit, &coupling));
        assert!(routed.final_layout.is_trivial());
    }

    #[test]
    fn routing_onto_a_larger_device_pads_with_idle_qubits() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).cx(1, 2).measure_all();
        let coupling = CouplingMap::ibmq_london();
        let routed = route(&qc, &coupling, Layout::trivial(3, 5), true).unwrap();
        assert_eq!(routed.circuit.num_qubits(), 5);
        assert!(two_qubit_ops_are_adjacent(&routed.circuit, &coupling));
        assert_eq!(routed.circuit.measurement_count(), 3);
    }

    #[test]
    fn measurements_and_conditions_follow_the_layout() {
        let mut qc = QuantumCircuit::new(3, 1);
        qc.cx(0, 2)
            .measure(2, 0)
            .gate_if(StandardGate::X, 0, 0, true);
        let coupling = CouplingMap::line(3);
        let routed = route(&qc, &coupling, Layout::trivial(3, 3), false).unwrap();
        // After routing the measurement must target whichever physical qubit
        // carries logical qubit 2.
        let measure_targets: Vec<usize> = routed
            .circuit
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Measure { qubit, .. } => Some(qubit),
                _ => None,
            })
            .collect();
        assert_eq!(measure_targets.len(), 1);
        assert_eq!(
            measure_targets[0],
            routed.final_layout.physical(2),
            "measurement does not follow the routed qubit"
        );
        // The classically-controlled gate survives with its condition.
        assert!(routed.circuit.iter().any(|op| op.condition.is_some()));
    }

    #[test]
    fn oversized_circuits_are_rejected() {
        let qc = QuantumCircuit::new(6, 0);
        let coupling = CouplingMap::ibmq_london();
        assert!(matches!(
            route(&qc, &coupling, Layout::trivial(5, 5), true),
            Err(CompileError::InvalidLayout { .. })
                | Err(CompileError::NotEnoughPhysicalQubits { .. })
        ));
    }

    #[test]
    fn three_qubit_gates_are_rejected() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.ccx(0, 1, 2);
        let coupling = CouplingMap::line(3);
        assert!(matches!(
            route(&qc, &coupling, Layout::trivial(3, 3), true),
            Err(CompileError::UnroutableOperation { .. })
        ));
    }

    #[test]
    fn mismatched_layout_is_rejected() {
        let qc = QuantumCircuit::new(2, 0);
        let coupling = CouplingMap::line(4);
        assert!(matches!(
            route(&qc, &coupling, Layout::trivial(3, 4), true),
            Err(CompileError::InvalidLayout { .. })
        ));
    }
}
