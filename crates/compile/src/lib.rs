//! # compile — compilation passes for (dynamic) quantum circuits
//!
//! The paper motivates equivalence checking with the verification of
//! *compilation results* (Section 2.3, Fig. 1b): before a circuit can run on
//! a device it is decomposed into native gates, rewritten into the native
//! basis and routed onto the device's coupling map — and each of those steps
//! can introduce bugs. This crate provides that compilation flow so the
//! workspace can reproduce the use case end to end:
//!
//! * [`decompose_controls`] — (multi-)controlled gates → {single-qubit, CX}
//!   via the ABC construction, the 6-CX Toffoli and the recursive
//!   square-root decomposition,
//! * [`rewrite_to_basis`] — single-qubit gates → a native basis
//!   ([`NativeBasis::U3Cx`] or the modern IBM [`NativeBasis::IbmRzSxX`]),
//! * [`route`] — SWAP insertion for a [`CouplingMap`] (line, ring, grid,
//!   all-to-all, or the paper's T-shaped IBMQ London device), optionally
//!   restoring the initial [`Layout`],
//! * [`optimize`] — conservative peephole optimization (identity removal,
//!   inverse-pair cancellation, rotation merging),
//! * [`Compiler`] — the end-to-end pipeline producing a
//!   [`CompilationResult`].
//!
//! Compiled circuits are functionally equivalent to the original *up to a
//! global phase*; the `qcec` equivalence checker is used in the integration
//! tests and examples to verify exactly that.
//!
//! ```
//! use circuit::QuantumCircuit;
//! use compile::{Compiler, Target};
//!
//! // The 3-qubit GHZ preparation compiled to the IBMQ London device.
//! let mut ghz = QuantumCircuit::new(3, 3);
//! ghz.h(0).cx(0, 1).cx(1, 2).measure_all();
//! let compiled = Compiler::new(Target::ibmq_london()).compile(&ghz)?;
//! assert_eq!(compiled.circuit.num_qubits(), 5);
//! # Ok::<(), compile::CompileError>(())
//! ```

#![warn(missing_docs)]

mod basis;
mod coupling;
mod decompose;
mod error;
mod layout;
mod math;
mod optimize;
mod pipeline;
mod routing;

pub use basis::{rewrite_to_basis, BasisRewrite, NativeBasis};
pub use coupling::CouplingMap;
pub use decompose::{decompose_controls, Decomposition};
pub use error::CompileError;
pub use layout::Layout;
pub use math::{sqrt_unitary, zyz_decompose, zyz_matrix, Zyz};
pub use optimize::{optimize, OptimizationReport};
pub use pipeline::{
    CompilationResult, Compiler, CompilerOptions, PassCircuit, StagedCompilation, Target,
};
pub use routing::{route, RoutingResult};
