//! Coupling maps of target devices.

use crate::error::CompileError;
use std::collections::VecDeque;
use std::fmt;

/// An undirected coupling map: which pairs of physical qubits support a
/// two-qubit gate.
///
/// The paper's Fig. 1b compiles the QPE circuit to the five-qubit, T-shaped
/// IBMQ London device; [`CouplingMap::ibmq_london`] reproduces that topology,
/// and a handful of further standard topologies are provided for the
/// compilation experiments.
///
/// # Examples
///
/// ```
/// use compile::CouplingMap;
///
/// let london = CouplingMap::ibmq_london();
/// assert_eq!(london.num_qubits(), 5);
/// assert!(london.are_adjacent(1, 3));
/// assert!(!london.are_adjacent(0, 4));
/// assert_eq!(london.distance(0, 4), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    name: String,
    n_qubits: usize,
    /// Adjacency matrix (symmetric).
    adjacency: Vec<Vec<bool>>,
}

impl CouplingMap {
    /// Creates a coupling map from an explicit edge list.
    ///
    /// Edges are treated as undirected; duplicates are ignored.
    pub fn from_edges(name: impl Into<String>, n_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut adjacency = vec![vec![false; n_qubits]; n_qubits];
        for &(a, b) in edges {
            assert!(a < n_qubits && b < n_qubits, "edge ({a}, {b}) out of range");
            assert_ne!(a, b, "self-loop ({a}, {a}) in coupling map");
            adjacency[a][b] = true;
            adjacency[b][a] = true;
        }
        CouplingMap {
            name: name.into(),
            n_qubits,
            adjacency,
        }
    }

    /// A linear chain `0 — 1 — … — (n−1)`.
    pub fn line(n_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n_qubits).map(|q| (q - 1, q)).collect();
        CouplingMap::from_edges(format!("line-{n_qubits}"), n_qubits, &edges)
    }

    /// A ring `0 — 1 — … — (n−1) — 0`.
    pub fn ring(n_qubits: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (1..n_qubits).map(|q| (q - 1, q)).collect();
        if n_qubits > 2 {
            edges.push((n_qubits - 1, 0));
        }
        CouplingMap::from_edges(format!("ring-{n_qubits}"), n_qubits, &edges)
    }

    /// A rectangular grid with `rows × cols` qubits (row-major numbering).
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        CouplingMap::from_edges(format!("grid-{rows}x{cols}"), rows * cols, &edges)
    }

    /// All-to-all connectivity (no routing required).
    pub fn full(n_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n_qubits {
            for b in (a + 1)..n_qubits {
                edges.push((a, b));
            }
        }
        CouplingMap::from_edges(format!("full-{n_qubits}"), n_qubits, &edges)
    }

    /// The five-qubit, T-shaped IBMQ London device of the paper's Fig. 1b:
    ///
    /// ```text
    /// 0 — 1 — 2
    ///     |
    ///     3
    ///     |
    ///     4
    /// ```
    pub fn ibmq_london() -> Self {
        CouplingMap::from_edges("ibmq-london", 5, &[(0, 1), (1, 2), (1, 3), (3, 4)])
    }

    /// Human-readable name of the topology.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Returns `true` when a two-qubit gate between `a` and `b` is native.
    pub fn are_adjacent(&self, a: usize, b: usize) -> bool {
        a < self.n_qubits && b < self.n_qubits && self.adjacency[a][b]
    }

    /// The undirected edges of the map (each listed once, `a < b`).
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for a in 0..self.n_qubits {
            for b in (a + 1)..self.n_qubits {
                if self.adjacency[a][b] {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Breadth-first shortest path from `from` to `to` (inclusive of both
    /// endpoints); `None` when unreachable.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from >= self.n_qubits || to >= self.n_qubits {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut predecessor = vec![usize::MAX; self.n_qubits];
        let mut queue = VecDeque::new();
        queue.push_back(from);
        predecessor[from] = from;
        while let Some(current) = queue.pop_front() {
            for next in 0..self.n_qubits {
                if self.adjacency[current][next] && predecessor[next] == usize::MAX {
                    predecessor[next] = current;
                    if next == to {
                        let mut path = vec![to];
                        let mut cursor = to;
                        while cursor != from {
                            cursor = predecessor[cursor];
                            path.push(cursor);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Number of edges on the shortest path between two physical qubits;
    /// `None` when unreachable.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        self.shortest_path(a, b).map(|p| p.len() - 1)
    }

    /// Returns `true` when every physical qubit can reach every other one.
    pub fn is_connected(&self) -> bool {
        if self.n_qubits == 0 {
            return true;
        }
        let mut seen = vec![false; self.n_qubits];
        let mut queue = VecDeque::new();
        queue.push_back(0);
        seen[0] = true;
        let mut count = 1;
        while let Some(current) = queue.pop_front() {
            for (next, &connected) in self.adjacency[current].iter().enumerate() {
                if connected && !seen[next] {
                    seen[next] = true;
                    count += 1;
                    queue.push_back(next);
                }
            }
        }
        count == self.n_qubits
    }

    /// Validates that the map can host `required` logical qubits.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::NotEnoughPhysicalQubits`] or
    /// [`CompileError::DisconnectedCouplingMap`].
    pub fn check_capacity(&self, required: usize) -> Result<(), CompileError> {
        if required > self.n_qubits {
            return Err(CompileError::NotEnoughPhysicalQubits {
                required,
                available: self.n_qubits,
            });
        }
        if self.n_qubits > 1 && !self.is_connected() {
            return Err(CompileError::DisconnectedCouplingMap);
        }
        Ok(())
    }
}

impl fmt::Display for CouplingMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} edges)",
            self.name,
            self.n_qubits,
            self.edges().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_topology_distances() {
        let line = CouplingMap::line(5);
        assert!(line.are_adjacent(0, 1));
        assert!(!line.are_adjacent(0, 2));
        assert_eq!(line.distance(0, 4), Some(4));
        assert_eq!(line.shortest_path(0, 3), Some(vec![0, 1, 2, 3]));
        assert!(line.is_connected());
        assert_eq!(line.edges().len(), 4);
    }

    #[test]
    fn ring_closes_the_loop() {
        let ring = CouplingMap::ring(6);
        assert!(ring.are_adjacent(5, 0));
        assert_eq!(ring.distance(0, 3), Some(3));
        assert_eq!(ring.distance(0, 5), Some(1));
    }

    #[test]
    fn grid_neighbours() {
        let grid = CouplingMap::grid(2, 3);
        assert_eq!(grid.num_qubits(), 6);
        assert!(grid.are_adjacent(0, 1));
        assert!(grid.are_adjacent(0, 3));
        assert!(!grid.are_adjacent(0, 4));
        assert_eq!(grid.distance(0, 5), Some(3));
    }

    #[test]
    fn full_connectivity_has_distance_one() {
        let full = CouplingMap::full(4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(full.distance(a, b), Some(1));
                }
            }
        }
    }

    #[test]
    fn london_matches_the_papers_topology() {
        let london = CouplingMap::ibmq_london();
        assert_eq!(london.num_qubits(), 5);
        assert_eq!(london.edges(), vec![(0, 1), (1, 2), (1, 3), (3, 4)]);
        assert_eq!(london.distance(2, 4), Some(3));
        assert_eq!(london.shortest_path(0, 4), Some(vec![0, 1, 3, 4]));
    }

    #[test]
    fn disconnected_map_is_detected() {
        let map = CouplingMap::from_edges("broken", 4, &[(0, 1), (2, 3)]);
        assert!(!map.is_connected());
        assert_eq!(map.distance(0, 3), None);
        assert!(matches!(
            map.check_capacity(2),
            Err(CompileError::DisconnectedCouplingMap)
        ));
    }

    #[test]
    fn capacity_check_counts_qubits() {
        let line = CouplingMap::line(3);
        assert!(line.check_capacity(3).is_ok());
        assert!(matches!(
            line.check_capacity(4),
            Err(CompileError::NotEnoughPhysicalQubits { .. })
        ));
    }

    #[test]
    fn display_mentions_name_and_size() {
        let text = CouplingMap::ibmq_london().to_string();
        assert!(text.contains("ibmq-london"));
        assert!(text.contains('5'));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CouplingMap::from_edges("bad", 2, &[(0, 5)]);
    }
}
