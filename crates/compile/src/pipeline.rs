//! The end-to-end compilation pipeline.

use crate::basis::{rewrite_to_basis, NativeBasis};
use crate::coupling::CouplingMap;
use crate::decompose::decompose_controls;
use crate::error::CompileError;
use crate::layout::Layout;
use crate::optimize::{optimize, OptimizationReport};
use crate::routing::route;
use circuit::QuantumCircuit;
use std::time::{Duration, Instant};

/// A compilation target: a coupling map plus a native gate set.
///
/// # Examples
///
/// ```
/// use compile::{Compiler, Target};
/// use circuit::QuantumCircuit;
///
/// let mut qc = QuantumCircuit::new(3, 3);
/// qc.h(0).cx(0, 1).ccx(0, 1, 2).measure_all();
/// let result = Compiler::new(Target::ibmq_london()).compile(&qc)?;
/// assert_eq!(result.circuit.num_qubits(), 5);
/// assert!(result.circuit.ops().iter().all(|op| op.qubits().len() <= 2));
/// # Ok::<(), compile::CompileError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// The device connectivity.
    pub coupling: CouplingMap,
    /// The native single-qubit gate set.
    pub basis: NativeBasis,
}

impl Target {
    /// The paper's Fig. 1b target: the five-qubit, T-shaped IBMQ London
    /// device with the modern IBM basis.
    pub fn ibmq_london() -> Self {
        Target {
            coupling: CouplingMap::ibmq_london(),
            basis: NativeBasis::IbmRzSxX,
        }
    }

    /// A linear device with `n` qubits and the `U3 + CX` basis.
    pub fn line(n: usize) -> Self {
        Target {
            coupling: CouplingMap::line(n),
            basis: NativeBasis::U3Cx,
        }
    }

    /// An all-to-all device (no routing needed) with the `U3 + CX` basis.
    pub fn all_to_all(n: usize) -> Self {
        Target {
            coupling: CouplingMap::full(n),
            basis: NativeBasis::U3Cx,
        }
    }
}

/// Options of the [`Compiler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompilerOptions {
    /// Run the peephole optimizer after the other passes.
    pub optimize: bool,
    /// Append SWAPs so the final layout equals the initial layout.
    ///
    /// Keeping this enabled makes the compiled circuit functionally
    /// equivalent to the (padded) original, which is what the verification
    /// flow expects.
    pub restore_layout: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            optimize: true,
            restore_layout: true,
        }
    }
}

/// Result of a [`Compiler::compile`] run.
#[derive(Debug, Clone)]
pub struct CompilationResult {
    /// The compiled circuit on the device's physical qubits.
    pub circuit: QuantumCircuit,
    /// Initial logical-to-physical layout.
    pub initial_layout: Layout,
    /// Layout after the last operation.
    pub final_layout: Layout,
    /// Number of SWAPs the router inserted.
    pub swaps_inserted: usize,
    /// Number of multi-controlled operations that were decomposed.
    pub decomposed_operations: usize,
    /// Number of single-qubit gates rewritten into the native basis.
    pub rewritten_gates: usize,
    /// Peephole-optimizer statistics (all zeros when disabled).
    pub optimization: OptimizationReport,
    /// Wall-clock compilation time.
    pub duration: Duration,
}

impl CompilationResult {
    /// Gate count of the compiled circuit (excluding barriers).
    pub fn gate_count(&self) -> usize {
        self.circuit.gate_count()
    }
}

/// One pass output of a staged compilation (see [`Compiler::compile_staged`]).
#[derive(Debug, Clone)]
pub struct PassCircuit {
    /// Name of the pass that produced this circuit: `"decompose"`,
    /// `"basis"`, `"route"` or `"optimize"`.
    pub pass: &'static str,
    /// The circuit after the pass ran.
    pub circuit: QuantumCircuit,
}

/// Result of a [`Compiler::compile_staged`] run: the final
/// [`CompilationResult`] plus every intermediate circuit, in pipeline order.
///
/// Adjacent snapshots are *nearly identical* — each differs from its
/// predecessor by exactly one pass — which is the regime incremental
/// (pass-by-pass) equivalence checking exploits: every miter stays close to
/// the identity, and a refutation names the guilty pass.
#[derive(Debug, Clone)]
pub struct StagedCompilation {
    /// The uncompiled input circuit.
    pub original: QuantumCircuit,
    /// Output of each pass that ran, in pipeline order. The last entry is
    /// the fully compiled circuit (same as `result.circuit`).
    pub passes: Vec<PassCircuit>,
    /// The ordinary compilation result.
    pub result: CompilationResult,
}

impl StagedCompilation {
    /// The verification chain in pipeline order: the original circuit
    /// (labelled `"original"`) followed by every pass output.
    ///
    /// Note the qubit counts change along the chain: passes up to routing
    /// stay on the logical register, routing and later passes run on the
    /// device's physical qubits. Equivalence checking pads the narrower
    /// side, exactly as for an endpoint check.
    pub fn chain(&self) -> Vec<(&'static str, &QuantumCircuit)> {
        let mut chain = vec![("original", &self.original)];
        chain.extend(self.passes.iter().map(|p| (p.pass, &p.circuit)));
        chain
    }
}

/// Compiles circuits for a [`Target`] by running decomposition, basis
/// rewriting, routing and (optionally) peephole optimization.
///
/// This reproduces the situation of the paper's Section 2.3: a high-level
/// algorithm circuit is turned into a device-level circuit, and equivalence
/// checking then verifies that compilation preserved the functionality.
#[derive(Debug, Clone)]
pub struct Compiler {
    target: Target,
    options: CompilerOptions,
}

impl Compiler {
    /// Creates a compiler with default options.
    pub fn new(target: Target) -> Self {
        Compiler {
            target,
            options: CompilerOptions::default(),
        }
    }

    /// Creates a compiler with explicit options.
    pub fn with_options(target: Target, options: CompilerOptions) -> Self {
        Compiler { target, options }
    }

    /// The compilation target.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The compiler options.
    pub fn options(&self) -> CompilerOptions {
        self.options
    }

    /// Compiles `circuit` for the target device.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the device is too small, its coupling
    /// map is disconnected, or routing encounters an operation it cannot
    /// handle.
    pub fn compile(&self, circuit: &QuantumCircuit) -> Result<CompilationResult, CompileError> {
        self.compile_staged(circuit).map(|staged| staged.result)
    }

    /// Compiles `circuit` and keeps every intermediate pass output.
    ///
    /// This is the entry point for incremental (pass-by-pass) verification:
    /// [`StagedCompilation::chain`] yields the original plus each pass
    /// output, and verifying adjacent snapshots localises a miscompilation
    /// to the pass that introduced it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Compiler::compile`].
    pub fn compile_staged(
        &self,
        circuit: &QuantumCircuit,
    ) -> Result<StagedCompilation, CompileError> {
        let start = Instant::now();
        self.target.coupling.check_capacity(circuit.num_qubits())?;

        let mut passes = Vec::with_capacity(4);
        let decomposed = decompose_controls(circuit);
        passes.push(PassCircuit {
            pass: "decompose",
            circuit: decomposed.circuit.clone(),
        });
        let rewritten = rewrite_to_basis(&decomposed.circuit, self.target.basis);
        passes.push(PassCircuit {
            pass: "basis",
            circuit: rewritten.circuit.clone(),
        });
        let layout = Layout::trivial(circuit.num_qubits(), self.target.coupling.num_qubits());
        let routed = route(
            &rewritten.circuit,
            &self.target.coupling,
            layout,
            self.options.restore_layout,
        )?;
        passes.push(PassCircuit {
            pass: "route",
            circuit: routed.circuit.clone(),
        });
        let (optimized, optimization) = if self.options.optimize {
            let (optimized, optimization) = optimize(&routed.circuit);
            passes.push(PassCircuit {
                pass: "optimize",
                circuit: optimized.clone(),
            });
            (optimized, optimization)
        } else {
            (routed.circuit.clone(), OptimizationReport::default())
        };

        Ok(StagedCompilation {
            original: circuit.clone(),
            passes,
            result: CompilationResult {
                circuit: optimized,
                initial_layout: routed.initial_layout,
                final_layout: routed.final_layout,
                swaps_inserted: routed.swaps_inserted,
                decomposed_operations: decomposed.expanded_operations,
                rewritten_gates: rewritten.rewritten_gates,
                optimization,
                duration: start.elapsed(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_compiles_to_london() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).cx(1, 2).measure_all();
        let result = Compiler::new(Target::ibmq_london()).compile(&qc).unwrap();
        assert_eq!(result.circuit.num_qubits(), 5);
        assert_eq!(result.circuit.measurement_count(), 3);
        for op in result.circuit.iter() {
            let qubits = op.qubits();
            if qubits.len() == 2 {
                assert!(Target::ibmq_london()
                    .coupling
                    .are_adjacent(qubits[0], qubits[1]));
            }
        }
    }

    #[test]
    fn toffoli_needs_decomposition_and_routing() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.ccx(0, 1, 2);
        let result = Compiler::new(Target::line(3)).compile(&qc).unwrap();
        assert_eq!(result.decomposed_operations, 1);
        assert!(result.circuit.ops().iter().all(|op| op.qubits().len() <= 2));
    }

    #[test]
    fn all_to_all_target_needs_no_swaps() {
        let mut qc = QuantumCircuit::new(4, 0);
        qc.cx(0, 3).cx(1, 2).cx(3, 1);
        let result = Compiler::new(Target::all_to_all(4)).compile(&qc).unwrap();
        assert_eq!(result.swaps_inserted, 0);
    }

    #[test]
    fn optimization_can_be_disabled() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.rz(0.3, 0).rz(-0.3, 0).cx(0, 1);
        let target = Target {
            coupling: CouplingMap::full(2),
            basis: NativeBasis::IbmRzSxX,
        };
        let options = CompilerOptions {
            optimize: false,
            restore_layout: true,
        };
        let unoptimized = Compiler::with_options(target.clone(), options)
            .compile(&qc)
            .unwrap();
        let optimized = Compiler::new(target).compile(&qc).unwrap();
        assert!(optimized.gate_count() < unoptimized.gate_count());
        assert!(optimized.optimization.iterations >= 1);
        assert_eq!(unoptimized.optimization, OptimizationReport::default());
    }

    #[test]
    fn staged_compilation_exposes_every_pass() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cx(0, 1).ccx(0, 1, 2).measure_all();
        let staged = Compiler::new(Target::ibmq_london())
            .compile_staged(&qc)
            .unwrap();
        let names: Vec<&str> = staged.passes.iter().map(|p| p.pass).collect();
        assert_eq!(names, ["decompose", "basis", "route", "optimize"]);
        // The last pass output is the compiled circuit, and the chain leads
        // with the untouched original.
        assert_eq!(
            staged.passes.last().unwrap().circuit.gate_count(),
            staged.result.gate_count()
        );
        let chain = staged.chain();
        assert_eq!(chain.len(), 5);
        assert_eq!(chain[0].0, "original");
        assert_eq!(chain[0].1.gate_count(), qc.gate_count());
        // Passes before routing stay on the logical register; routing moves
        // to the device width.
        assert_eq!(chain[1].1.num_qubits(), 3);
        assert_eq!(chain[3].1.num_qubits(), 5);
    }

    #[test]
    fn staged_compilation_skips_optimize_when_disabled() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let options = CompilerOptions {
            optimize: false,
            restore_layout: true,
        };
        let staged = Compiler::with_options(Target::line(2), options)
            .compile_staged(&qc)
            .unwrap();
        let names: Vec<&str> = staged.passes.iter().map(|p| p.pass).collect();
        assert_eq!(names, ["decompose", "basis", "route"]);
    }

    #[test]
    fn too_small_devices_are_rejected() {
        let qc = QuantumCircuit::new(6, 0);
        assert!(matches!(
            Compiler::new(Target::ibmq_london()).compile(&qc),
            Err(CompileError::NotEnoughPhysicalQubits { .. })
        ));
    }

    #[test]
    fn compilation_result_reports_pass_statistics() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).cp(0.5, 0, 2).ccx(0, 1, 2).measure_all();
        let result = Compiler::new(Target::ibmq_london()).compile(&qc).unwrap();
        assert!(result.decomposed_operations >= 2);
        assert!(result.rewritten_gates >= 1);
        assert!(result.duration.as_nanos() > 0);
        assert!(result.gate_count() > qc.gate_count());
        assert!(result.final_layout.is_trivial());
    }

    #[test]
    fn dynamic_circuits_compile_too() {
        // A 2-qubit IQPE-style dynamic circuit with measure / reset /
        // classically-controlled gates.
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cp(0.7, 0, 1).h(0).measure(0, 0).reset(0);
        qc.h(0).p_if(-0.35, 0, 0).cp(0.35, 0, 1).h(0).measure(0, 1);
        let result = Compiler::new(Target::ibmq_london()).compile(&qc).unwrap();
        assert_eq!(result.circuit.measurement_count(), 2);
        assert_eq!(result.circuit.reset_count(), 1);
        assert!(result.circuit.counts().classically_controlled >= 1);
    }
}
