//! Rewriting single-qubit gates into a device's native gate set.

use crate::math::zyz_decompose;
use circuit::{ClassicalCondition, OpKind, Operation, QuantumCircuit, StandardGate};
use sim::gate_matrix;
use std::f64::consts::PI;

/// Angles below this threshold are treated as zero and not emitted.
const ANGLE_EPSILON: f64 = 1e-12;

/// Native single-qubit gate sets of the supported targets.
///
/// Two-qubit interactions are CX in both cases (the paper's Example 2: IBM
/// devices natively support arbitrary single-qubit operations plus CX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NativeBasis {
    /// Arbitrary single-qubit `U(θ, φ, λ)` gates plus CX.
    #[default]
    U3Cx,
    /// The modern IBM basis `{Rz, √X, X}` plus CX.
    IbmRzSxX,
}

impl NativeBasis {
    /// Returns `true` when an *uncontrolled* `gate` is already native.
    pub fn contains(self, gate: StandardGate) -> bool {
        match self {
            NativeBasis::U3Cx => matches!(gate, StandardGate::U(..) | StandardGate::I),
            NativeBasis::IbmRzSxX => matches!(
                gate,
                StandardGate::Rz(_) | StandardGate::Sx | StandardGate::X | StandardGate::I
            ),
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            NativeBasis::U3Cx => "u3+cx",
            NativeBasis::IbmRzSxX => "rz+sx+x+cx",
        }
    }
}

/// Result of the basis-rewriting pass.
#[derive(Debug, Clone)]
pub struct BasisRewrite {
    /// The rewritten circuit.
    pub circuit: QuantumCircuit,
    /// Number of gates that had to be rewritten.
    pub rewritten_gates: usize,
    /// The basis that was targeted.
    pub basis: NativeBasis,
}

/// Rewrites every uncontrolled (or classically-controlled) single-qubit gate
/// of `circuit` into `basis`.
///
/// Controlled gates are passed through: the
/// [`decompose_controls`](crate::decompose_controls) pass runs first in the
/// [`Compiler`](crate::Compiler) pipeline and leaves only CX gates, which are
/// native. The rewriting preserves the circuit functionality up to a global
/// phase.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use compile::{rewrite_to_basis, NativeBasis};
///
/// let mut qc = QuantumCircuit::new(1, 0);
/// qc.h(0);
/// let rewritten = rewrite_to_basis(&qc, NativeBasis::IbmRzSxX);
/// assert!(rewritten.circuit.ops().iter().all(|op| match &op.kind {
///     circuit::OpKind::Unitary { gate, .. } => NativeBasis::IbmRzSxX.contains(*gate),
///     _ => true,
/// }));
/// ```
pub fn rewrite_to_basis(circuit: &QuantumCircuit, basis: NativeBasis) -> BasisRewrite {
    let mut out = QuantumCircuit::with_name(
        circuit.num_qubits(),
        circuit.num_bits(),
        format!("{}_{}", circuit.name(), basis.name()),
    );
    let mut rewritten = 0usize;
    for op in circuit.iter() {
        match &op.kind {
            OpKind::Unitary {
                gate,
                target,
                controls,
            } if controls.is_empty() => {
                if basis.contains(*gate) || gate.is_identity() {
                    if !gate.is_identity() {
                        out.push(op.clone());
                    }
                    continue;
                }
                rewritten += 1;
                for emitted in rewrite_single_qubit(*gate, *target, op.condition, basis) {
                    out.push(emitted);
                }
            }
            _ => out.push(op.clone()),
        }
    }
    BasisRewrite {
        circuit: out,
        rewritten_gates: rewritten,
        basis,
    }
}

/// Expresses a single-qubit gate in the target basis (global phase dropped).
fn rewrite_single_qubit(
    gate: StandardGate,
    target: usize,
    condition: Option<ClassicalCondition>,
    basis: NativeBasis,
) -> Vec<Operation> {
    let angles = zyz_decompose(&gate_matrix(gate));
    // U3 parameters: θ = γ, φ = β, λ = δ.
    let (theta, phi, lambda) = (angles.gamma, angles.beta, angles.delta);
    let mut ops = Vec::new();
    let mut push = |gate: StandardGate| {
        let trivial = match gate {
            StandardGate::Rz(t) | StandardGate::Phase(t) => t.abs() < ANGLE_EPSILON,
            _ => false,
        };
        if !trivial {
            ops.push(Operation {
                kind: OpKind::Unitary {
                    gate,
                    target,
                    controls: vec![],
                },
                condition,
            });
        }
    };
    match basis {
        NativeBasis::U3Cx => {
            push(StandardGate::U(theta, phi, lambda));
        }
        NativeBasis::IbmRzSxX => {
            if theta.abs() < ANGLE_EPSILON {
                // Diagonal gate: a single Rz suffices (up to global phase).
                push(StandardGate::Rz(phi + lambda));
            } else {
                // ZXZXZ: U3(θ, φ, λ) ∝ Rz(φ+π) · √X · Rz(θ+π) · √X · Rz(λ).
                push(StandardGate::Rz(lambda));
                push(StandardGate::Sx);
                push(StandardGate::Rz(theta + PI));
                push(StandardGate::Sx);
                push(StandardGate::Rz(phi + PI));
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd::{Control, DdPackage, MEdge};

    fn dense_matrix(circuit: &QuantumCircuit) -> Vec<Vec<dd::Complex>> {
        let mut package = DdPackage::new(circuit.num_qubits());
        let mut system: MEdge = package.identity();
        for op in circuit.iter() {
            if let OpKind::Unitary {
                gate,
                target,
                controls,
            } = &op.kind
            {
                let matrix = gate_matrix(*gate);
                let dd_controls: Vec<Control> = controls
                    .iter()
                    .map(|c| Control {
                        qubit: c.qubit,
                        positive: c.positive,
                    })
                    .collect();
                let gate_dd = package.make_gate(&matrix, *target, &dd_controls);
                system = package.mul_matrices(gate_dd, system);
            }
        }
        package.to_matrix(system)
    }

    fn assert_equivalent_up_to_phase(a: &QuantumCircuit, b: &QuantumCircuit) {
        let dense_a = dense_matrix(a);
        let dense_b = dense_matrix(b);
        let dim = dense_a.len();
        let mut phase = None;
        for i in 0..dim {
            for j in 0..dim {
                if dense_a[i][j].abs() > 1e-9 {
                    phase = Some(dense_b[i][j] / dense_a[i][j]);
                    break;
                }
            }
            if phase.is_some() {
                break;
            }
        }
        let phase = phase.expect("non-zero unitary");
        assert!(
            (phase.abs() - 1.0).abs() < 1e-6,
            "not a pure phase: {phase:?}"
        );
        for i in 0..dim {
            for j in 0..dim {
                assert!(
                    (dense_a[i][j] * phase - dense_b[i][j]).abs() < 1e-6,
                    "mismatch at ({i}, {j})"
                );
            }
        }
    }

    fn all_single_qubit_gates() -> Vec<StandardGate> {
        vec![
            StandardGate::H,
            StandardGate::X,
            StandardGate::Y,
            StandardGate::Z,
            StandardGate::S,
            StandardGate::Sdg,
            StandardGate::T,
            StandardGate::Tdg,
            StandardGate::Sx,
            StandardGate::Sxdg,
            StandardGate::Phase(0.3),
            StandardGate::Rx(1.2),
            StandardGate::Ry(-0.5),
            StandardGate::Rz(2.3),
            StandardGate::U(0.7, -0.2, 1.4),
        ]
    }

    #[test]
    fn every_gate_rewrites_into_the_u3_basis() {
        for gate in all_single_qubit_gates() {
            let mut qc = QuantumCircuit::new(1, 0);
            qc.gate(gate, 0);
            let rewritten = rewrite_to_basis(&qc, NativeBasis::U3Cx);
            for op in rewritten.circuit.iter() {
                if let OpKind::Unitary { gate, .. } = &op.kind {
                    assert!(NativeBasis::U3Cx.contains(*gate), "{gate} not in basis");
                }
            }
            assert_equivalent_up_to_phase(&qc, &rewritten.circuit);
        }
    }

    #[test]
    fn every_gate_rewrites_into_the_ibm_basis() {
        for gate in all_single_qubit_gates() {
            let mut qc = QuantumCircuit::new(1, 0);
            qc.gate(gate, 0);
            let rewritten = rewrite_to_basis(&qc, NativeBasis::IbmRzSxX);
            for op in rewritten.circuit.iter() {
                if let OpKind::Unitary { gate, .. } = &op.kind {
                    assert!(NativeBasis::IbmRzSxX.contains(*gate), "{gate} not in basis");
                }
            }
            assert_equivalent_up_to_phase(&qc, &rewritten.circuit);
        }
    }

    #[test]
    fn cx_and_measurements_pass_through() {
        let mut qc = QuantumCircuit::new(2, 1);
        qc.cx(0, 1).measure(1, 0);
        let rewritten = rewrite_to_basis(&qc, NativeBasis::IbmRzSxX);
        assert_eq!(rewritten.rewritten_gates, 0);
        assert_eq!(rewritten.circuit.ops(), qc.ops());
    }

    #[test]
    fn identity_gates_are_dropped() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.gate(StandardGate::I, 0)
            .gate(StandardGate::Phase(0.0), 0);
        let rewritten = rewrite_to_basis(&qc, NativeBasis::IbmRzSxX);
        assert!(rewritten.circuit.is_empty());
    }

    #[test]
    fn classical_condition_is_preserved() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.gate_if(StandardGate::H, 0, 0, true);
        let rewritten = rewrite_to_basis(&qc, NativeBasis::IbmRzSxX);
        assert!(!rewritten.circuit.is_empty());
        assert!(rewritten
            .circuit
            .ops()
            .iter()
            .all(|op| op.condition == Some(ClassicalCondition::is_one(0))));
    }

    #[test]
    fn diagonal_gates_become_a_single_rz() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.t(0);
        let rewritten = rewrite_to_basis(&qc, NativeBasis::IbmRzSxX);
        assert_eq!(rewritten.circuit.len(), 1);
        assert_equivalent_up_to_phase(&qc, &rewritten.circuit);
    }

    #[test]
    fn a_realistic_mixed_circuit_stays_equivalent() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0)
            .cx(0, 1)
            .t(1)
            .sdg(2)
            .cx(1, 2)
            .ry(0.4, 0)
            .cx(2, 0)
            .p(1.1, 2);
        for basis in [NativeBasis::U3Cx, NativeBasis::IbmRzSxX] {
            let rewritten = rewrite_to_basis(&qc, basis);
            assert_equivalent_up_to_phase(&qc, &rewritten.circuit);
        }
    }

    #[test]
    fn basis_names_are_stable() {
        assert_eq!(NativeBasis::U3Cx.name(), "u3+cx");
        assert_eq!(NativeBasis::IbmRzSxX.name(), "rz+sx+x+cx");
        assert_eq!(NativeBasis::default(), NativeBasis::U3Cx);
    }

    #[test]
    fn x_gate_is_native_in_the_ibm_basis() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.x(0);
        let rewritten = rewrite_to_basis(&qc, NativeBasis::IbmRzSxX);
        assert_eq!(rewritten.rewritten_gates, 0);
        assert_eq!(rewritten.circuit.len(), 1);
        // But X is not native in the plain-U3 basis and must be rewritten.
        let rewritten = rewrite_to_basis(&qc, NativeBasis::U3Cx);
        assert_eq!(rewritten.rewritten_gates, 1);
    }
}
