//! Logical-to-physical qubit layouts.

use crate::error::CompileError;
use std::fmt;

/// An injective assignment of logical circuit qubits to physical device
/// qubits.
///
/// The routing pass updates the layout every time it inserts a SWAP; the
/// final layout is part of the [`CompilationResult`](crate::CompilationResult)
/// so callers can undo or account for the permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `logical_to_physical[l]` is the physical qubit carrying logical `l`.
    logical_to_physical: Vec<usize>,
    /// Number of physical qubits of the device.
    n_physical: usize,
}

impl Layout {
    /// The identity layout: logical qubit `l` sits on physical qubit `l`.
    ///
    /// # Panics
    ///
    /// Panics when the device is smaller than the circuit.
    pub fn trivial(n_logical: usize, n_physical: usize) -> Self {
        assert!(
            n_logical <= n_physical,
            "device has {n_physical} qubits but the circuit needs {n_logical}"
        );
        Layout {
            logical_to_physical: (0..n_logical).collect(),
            n_physical,
        }
    }

    /// Creates a layout from an explicit assignment vector.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidLayout`] when the assignment is not
    /// injective or references a physical qubit outside the device.
    pub fn from_assignment(
        logical_to_physical: Vec<usize>,
        n_physical: usize,
    ) -> Result<Self, CompileError> {
        let mut used = vec![false; n_physical];
        for (logical, &physical) in logical_to_physical.iter().enumerate() {
            if physical >= n_physical {
                return Err(CompileError::InvalidLayout {
                    reason: format!(
                        "logical qubit {logical} mapped to physical qubit {physical}, device has \
                         only {n_physical}"
                    ),
                });
            }
            if used[physical] {
                return Err(CompileError::InvalidLayout {
                    reason: format!("physical qubit {physical} assigned twice"),
                });
            }
            used[physical] = true;
        }
        Ok(Layout {
            logical_to_physical,
            n_physical,
        })
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Number of physical qubits of the device.
    pub fn num_physical(&self) -> usize {
        self.n_physical
    }

    /// Physical qubit carrying logical qubit `logical`.
    pub fn physical(&self, logical: usize) -> usize {
        self.logical_to_physical[logical]
    }

    /// Logical qubit currently sitting on physical qubit `physical`, if any.
    pub fn logical(&self, physical: usize) -> Option<usize> {
        self.logical_to_physical.iter().position(|&p| p == physical)
    }

    /// The full logical-to-physical assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.logical_to_physical
    }

    /// Swaps the contents of two physical qubits (used after inserting a SWAP
    /// gate during routing). Physical qubits not carrying a logical qubit are
    /// handled transparently.
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        for slot in &mut self.logical_to_physical {
            if *slot == a {
                *slot = b;
            } else if *slot == b {
                *slot = a;
            }
        }
    }

    /// Returns `true` when every logical qubit sits on the physical qubit of
    /// the same index.
    pub fn is_trivial(&self) -> bool {
        self.logical_to_physical
            .iter()
            .enumerate()
            .all(|(l, &p)| l == p)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pairs: Vec<String> = self
            .logical_to_physical
            .iter()
            .enumerate()
            .map(|(l, p)| format!("q{l}→{p}"))
            .collect();
        write!(f, "[{}]", pairs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_layout_is_identity() {
        let layout = Layout::trivial(3, 5);
        assert!(layout.is_trivial());
        assert_eq!(layout.physical(2), 2);
        assert_eq!(layout.logical(2), Some(2));
        assert_eq!(layout.logical(4), None);
        assert_eq!(layout.num_logical(), 3);
        assert_eq!(layout.num_physical(), 5);
    }

    #[test]
    fn swap_updates_both_directions() {
        let mut layout = Layout::trivial(3, 3);
        layout.swap_physical(0, 2);
        assert_eq!(layout.physical(0), 2);
        assert_eq!(layout.physical(2), 0);
        assert_eq!(layout.physical(1), 1);
        assert!(!layout.is_trivial());
        layout.swap_physical(0, 2);
        assert!(layout.is_trivial());
    }

    #[test]
    fn swap_with_unoccupied_physical_qubit() {
        let mut layout = Layout::trivial(2, 4);
        layout.swap_physical(1, 3);
        assert_eq!(layout.physical(1), 3);
        assert_eq!(layout.logical(1), None);
    }

    #[test]
    fn from_assignment_validates_injectivity() {
        assert!(Layout::from_assignment(vec![2, 0, 1], 3).is_ok());
        assert!(matches!(
            Layout::from_assignment(vec![0, 0], 3),
            Err(CompileError::InvalidLayout { .. })
        ));
        assert!(matches!(
            Layout::from_assignment(vec![0, 7], 3),
            Err(CompileError::InvalidLayout { .. })
        ));
    }

    #[test]
    fn display_lists_assignments() {
        let layout = Layout::from_assignment(vec![1, 0], 2).unwrap();
        assert_eq!(layout.to_string(), "[q0→1, q1→0]");
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn trivial_layout_rejects_small_devices() {
        Layout::trivial(4, 2);
    }
}
