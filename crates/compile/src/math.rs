//! Small dense linear-algebra helpers for single-qubit unitaries.
//!
//! The decomposition passes need two classical computations on 2×2 unitaries:
//! the ZYZ (Euler-angle) decomposition used by the controlled-gate (ABC)
//! construction, and the principal square root used by the recursive
//! multi-controlled decomposition.

use dd::{gates, Complex, GateMatrix};

/// The ZYZ decomposition of a single-qubit unitary:
/// `U = e^{iα} · Rz(β) · Ry(γ) · Rz(δ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zyz {
    /// Global phase α.
    pub alpha: f64,
    /// First (leftmost) Z-rotation angle β.
    pub beta: f64,
    /// Y-rotation angle γ.
    pub gamma: f64,
    /// Last (rightmost) Z-rotation angle δ.
    pub delta: f64,
}

/// Computes the ZYZ decomposition of a 2×2 unitary.
///
/// The result satisfies `u ≈ e^{iα} Rz(β) Ry(γ) Rz(δ)` within floating-point
/// accuracy (validated by [`zyz_matrix`] round-trip tests).
pub fn zyz_decompose(u: &GateMatrix) -> Zyz {
    // Global phase from the determinant: det(U) = e^{2iα}.
    let det = u[0][0] * u[1][1] - u[0][1] * u[1][0];
    let alpha = det.arg() / 2.0;
    // Remove the phase so the remainder is (numerically) in SU(2).
    let inv_phase = Complex::from_phase(-alpha);
    let m = [
        [u[0][0] * inv_phase, u[0][1] * inv_phase],
        [u[1][0] * inv_phase, u[1][1] * inv_phase],
    ];

    let gamma = 2.0 * m[1][0].abs().atan2(m[0][0].abs());
    let (beta, delta) = if m[0][0].abs() < 1e-12 {
        // cos(γ/2) = 0: only β − δ is determined.
        let diff = 2.0 * m[1][0].arg();
        (diff, 0.0)
    } else if m[1][0].abs() < 1e-12 {
        // sin(γ/2) = 0: only β + δ is determined.
        let sum = 2.0 * m[1][1].arg();
        (sum, 0.0)
    } else {
        let sum = 2.0 * m[1][1].arg();
        let diff = 2.0 * m[1][0].arg();
        ((sum + diff) / 2.0, (sum - diff) / 2.0)
    };
    Zyz {
        alpha,
        beta,
        gamma,
        delta,
    }
}

/// Rebuilds the matrix `e^{iα} Rz(β) Ry(γ) Rz(δ)` from its Euler angles.
pub fn zyz_matrix(angles: &Zyz) -> GateMatrix {
    let rz_beta = gates::rz(angles.beta);
    let ry_gamma = gates::ry(angles.gamma);
    let rz_delta = gates::rz(angles.delta);
    let product = gates::matmul(&rz_beta, &gates::matmul(&ry_gamma, &rz_delta));
    let phase = Complex::from_phase(angles.alpha);
    [
        [product[0][0] * phase, product[0][1] * phase],
        [product[1][0] * phase, product[1][1] * phase],
    ]
}

/// The principal square root of a 2×2 unitary, i.e. a unitary `W` with
/// `W · W ≈ U`.
///
/// Uses the axis–angle form: any SU(2) element is
/// `cos(t)·I − i·sin(t)·(n·σ)`, whose square root is obtained by halving `t`;
/// the global phase is likewise halved.
pub fn sqrt_unitary(u: &GateMatrix) -> GateMatrix {
    let det = u[0][0] * u[1][1] - u[0][1] * u[1][0];
    let alpha = det.arg() / 2.0;
    let inv_phase = Complex::from_phase(-alpha);
    let m = [
        [u[0][0] * inv_phase, u[0][1] * inv_phase],
        [u[1][0] * inv_phase, u[1][1] * inv_phase],
    ];
    // m = cos(t) I − i sin(t) (n·σ); the trace is real for SU(2).
    let cos_t = ((m[0][0] + m[1][1]) / 2.0).re;
    let cos_t = cos_t.clamp(-1.0, 1.0);
    let t = cos_t.acos();
    let sin_t = t.sin();

    let half = t / 2.0;
    let cos_h = half.cos();
    let sin_h = half.sin();

    let su2_sqrt: GateMatrix = if sin_t.abs() < 1e-12 {
        if cos_t > 0.0 {
            // m ≈ +I.
            gates::id()
        } else {
            // m ≈ −I: pick the Z axis, √(−I) = −i·Z.
            [
                [Complex::new(0.0, -1.0), Complex::ZERO],
                [Complex::ZERO, Complex::new(0.0, 1.0)],
            ]
        }
    } else {
        // n·σ = i (m − cos(t) I) / sin(t).
        let scale = Complex::new(0.0, 1.0) / sin_t;
        let n_sigma = [
            [(m[0][0] - Complex::real(cos_t)) * scale, m[0][1] * scale],
            [m[1][0] * scale, (m[1][1] - Complex::real(cos_t)) * scale],
        ];
        let minus_i_sin = Complex::new(0.0, -sin_h);
        [
            [
                Complex::real(cos_h) + minus_i_sin * n_sigma[0][0],
                minus_i_sin * n_sigma[0][1],
            ],
            [
                minus_i_sin * n_sigma[1][0],
                Complex::real(cos_h) + minus_i_sin * n_sigma[1][1],
            ],
        ]
    };
    let phase = Complex::from_phase(alpha / 2.0);
    [
        [su2_sqrt[0][0] * phase, su2_sqrt[0][1] * phase],
        [su2_sqrt[1][0] * phase, su2_sqrt[1][1] * phase],
    ]
}

/// Maximum absolute element-wise difference between two 2×2 matrices.
pub fn max_difference(a: &GateMatrix, b: &GateMatrix) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..2 {
        for j in 0..2 {
            worst = worst.max((a[i][j] - b[i][j]).abs());
        }
    }
    worst
}

/// Returns `true` when two 2×2 matrices agree element-wise within `eps`.
pub fn approx_eq(a: &GateMatrix, b: &GateMatrix, eps: f64) -> bool {
    max_difference(a, b) <= eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::StandardGate;
    use sim::gate_matrix;

    fn all_gates() -> Vec<StandardGate> {
        vec![
            StandardGate::I,
            StandardGate::H,
            StandardGate::X,
            StandardGate::Y,
            StandardGate::Z,
            StandardGate::S,
            StandardGate::Sdg,
            StandardGate::T,
            StandardGate::Tdg,
            StandardGate::Sx,
            StandardGate::Sxdg,
            StandardGate::Phase(0.37),
            StandardGate::Phase(-2.2),
            StandardGate::Rx(1.3),
            StandardGate::Ry(-0.8),
            StandardGate::Rz(2.7),
            StandardGate::U(0.4, 1.1, -0.6),
            StandardGate::U(std::f64::consts::PI, 0.0, std::f64::consts::PI),
        ]
    }

    #[test]
    fn zyz_round_trips_every_standard_gate() {
        for gate in all_gates() {
            let matrix = gate_matrix(gate);
            let angles = zyz_decompose(&matrix);
            let rebuilt = zyz_matrix(&angles);
            assert!(
                approx_eq(&matrix, &rebuilt, 1e-9),
                "ZYZ round trip failed for {gate}"
            );
        }
    }

    #[test]
    fn zyz_of_identity_is_trivial() {
        let angles = zyz_decompose(&gates::id());
        assert!(angles.alpha.abs() < 1e-12);
        assert!(angles.gamma.abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back_to_the_gate() {
        for gate in all_gates() {
            let matrix = gate_matrix(gate);
            let root = sqrt_unitary(&matrix);
            assert!(gates::is_unitary(&root), "sqrt of {gate} is not unitary");
            let squared = gates::matmul(&root, &root);
            assert!(
                approx_eq(&matrix, &squared, 1e-9),
                "sqrt of {gate} does not square back"
            );
        }
    }

    #[test]
    fn sqrt_of_x_is_sx_up_to_global_phase() {
        let root = sqrt_unitary(&gates::x());
        let sx = gates::sx();
        // Compare after removing the relative global phase.
        let phase = sx[0][0] / root[0][0];
        let adjusted = [
            [root[0][0] * phase, root[0][1] * phase],
            [root[1][0] * phase, root[1][1] * phase],
        ];
        assert!(approx_eq(&adjusted, &sx, 1e-9));
    }

    #[test]
    fn max_difference_is_zero_for_identical_matrices() {
        let h = gates::h();
        assert!(max_difference(&h, &h) < 1e-15);
        assert!(max_difference(&h, &gates::x()) > 0.2);
    }
}
