//! Error type of the compilation passes.

use std::fmt;

/// Errors produced by the compilation passes.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The circuit needs more qubits than the target device provides.
    NotEnoughPhysicalQubits {
        /// Logical qubits of the circuit.
        required: usize,
        /// Physical qubits of the device.
        available: usize,
    },
    /// The coupling map is not connected, so routing cannot succeed.
    DisconnectedCouplingMap,
    /// The routing pass encountered a gate acting on more than two qubits;
    /// run the decomposition pass first.
    UnroutableOperation {
        /// Display form of the offending operation.
        operation: String,
    },
    /// A layout was supplied that does not assign every logical qubit a
    /// distinct physical qubit.
    InvalidLayout {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotEnoughPhysicalQubits {
                required,
                available,
            } => write!(
                f,
                "circuit needs {required} qubits but the device only has {available}"
            ),
            CompileError::DisconnectedCouplingMap => {
                write!(f, "the coupling map is not connected")
            }
            CompileError::UnroutableOperation { operation } => write!(
                f,
                "operation `{operation}` acts on more than two qubits; decompose before routing"
            ),
            CompileError::InvalidLayout { reason } => write!(f, "invalid layout: {reason}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CompileError::NotEnoughPhysicalQubits {
            required: 7,
            available: 5,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('5'));
        assert!(CompileError::DisconnectedCouplingMap
            .to_string()
            .contains("connected"));
        let e = CompileError::UnroutableOperation {
            operation: "ccx q[0], q[1], q[2]".into(),
        };
        assert!(e.to_string().contains("ccx"));
        let e = CompileError::InvalidLayout {
            reason: "duplicate physical qubit 3".into(),
        };
        assert!(e.to_string().contains("duplicate"));
    }
}
