//! Decomposition of (multi-)controlled gates into {single-qubit gates, CX}.
//!
//! IBM-style devices natively support arbitrary single-qubit operations plus
//! the two-qubit CX — the gate set of the paper's Example 2. This pass
//! rewrites every controlled operation into that set:
//!
//! * singly-controlled gates via the ABC construction (Nielsen & Chuang,
//!   Corollary 4.2) on top of the ZYZ Euler decomposition,
//! * doubly-controlled X via the standard 6-CX Toffoli realization,
//! * higher control counts via the recursive square-root construction
//!   (Barenco et al., Lemma 7.5), which needs no ancilla qubits.
//!
//! The emitted circuit realizes the original one *up to a global phase*
//! (uncontrolled global phases are dropped); the equivalence checker treats
//! circuits equal up to global phase as equivalent.

use crate::math::{approx_eq, sqrt_unitary, zyz_decompose};
use circuit::{
    ClassicalCondition, OpKind, Operation, QuantumCircuit, QuantumControl, StandardGate,
};
use dd::{gates, GateMatrix};
use sim::gate_matrix;

/// Angles below this threshold are treated as zero and not emitted.
const ANGLE_EPSILON: f64 = 1e-12;

/// Result of the control-decomposition pass.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The rewritten circuit (same registers, only {1-qubit, CX} unitaries).
    pub circuit: QuantumCircuit,
    /// Number of operations that had to be expanded.
    pub expanded_operations: usize,
}

/// Rewrites every multi-controlled unitary of `circuit` into single-qubit
/// gates and CX.
///
/// Dynamic primitives (measurements, resets, classically-controlled
/// single-qubit gates) are passed through untouched; classically-controlled
/// *controlled* gates have the classical condition propagated to every gate
/// of their expansion.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use compile::decompose_controls;
///
/// let mut qc = QuantumCircuit::new(3, 0);
/// qc.ccx(0, 1, 2);
/// let decomposed = decompose_controls(&qc);
/// assert!(decomposed.circuit.ops().iter().all(|op| op.qubits().len() <= 2));
/// assert_eq!(decomposed.expanded_operations, 1);
/// ```
pub fn decompose_controls(circuit: &QuantumCircuit) -> Decomposition {
    let mut out = QuantumCircuit::with_name(
        circuit.num_qubits(),
        circuit.num_bits(),
        format!("{}_decomposed", circuit.name()),
    );
    let mut expanded = 0usize;
    for op in circuit.iter() {
        match &op.kind {
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                let keep_as_is = controls.is_empty()
                    || (controls.len() == 1
                        && controls[0].positive
                        && matches!(gate, StandardGate::X));
                if keep_as_is {
                    out.push(op.clone());
                    continue;
                }
                expanded += 1;
                let mut ops = Vec::new();
                emit_with_negative_controls(
                    &mut ops,
                    &gate_matrix(*gate),
                    *target,
                    controls,
                    op.condition,
                );
                for emitted in ops {
                    out.push(emitted);
                }
            }
            _ => out.push(op.clone()),
        }
    }
    Decomposition {
        circuit: out,
        expanded_operations: expanded,
    }
}

/// Handles negative controls by conjugating with X, then defers to the
/// positive-control emission.
fn emit_with_negative_controls(
    out: &mut Vec<Operation>,
    matrix: &GateMatrix,
    target: usize,
    controls: &[QuantumControl],
    condition: Option<ClassicalCondition>,
) {
    let negatives: Vec<usize> = controls
        .iter()
        .filter(|c| !c.positive)
        .map(|c| c.qubit)
        .collect();
    let positives: Vec<usize> = controls.iter().map(|c| c.qubit).collect();
    for &q in &negatives {
        out.push(with_condition(
            Operation::unitary(StandardGate::X, q, vec![]),
            condition,
        ));
    }
    emit_controlled_matrix(out, matrix, target, &positives, condition);
    for &q in &negatives {
        out.push(with_condition(
            Operation::unitary(StandardGate::X, q, vec![]),
            condition,
        ));
    }
}

fn with_condition(mut op: Operation, condition: Option<ClassicalCondition>) -> Operation {
    op.condition = condition;
    op
}

fn push_rotation(
    out: &mut Vec<Operation>,
    gate: StandardGate,
    target: usize,
    condition: Option<ClassicalCondition>,
) {
    let trivial = match gate {
        StandardGate::Rz(t) | StandardGate::Ry(t) | StandardGate::Phase(t) => {
            t.abs() < ANGLE_EPSILON
        }
        _ => false,
    };
    if !trivial {
        out.push(with_condition(
            Operation::unitary(gate, target, vec![]),
            condition,
        ));
    }
}

fn push_cx(
    out: &mut Vec<Operation>,
    control: usize,
    target: usize,
    condition: Option<ClassicalCondition>,
) {
    out.push(with_condition(
        Operation::unitary(StandardGate::X, target, vec![QuantumControl::pos(control)]),
        condition,
    ));
}

/// Emits the decomposition of `matrix` applied to `target`, controlled on the
/// (all positive) `controls`, into `out`.
fn emit_controlled_matrix(
    out: &mut Vec<Operation>,
    matrix: &GateMatrix,
    target: usize,
    controls: &[usize],
    condition: Option<ClassicalCondition>,
) {
    match controls.len() {
        0 => emit_single_qubit(out, matrix, target, condition),
        1 => emit_abc(out, matrix, target, controls[0], condition),
        2 if approx_eq(matrix, &gates::x(), 1e-9) => {
            emit_toffoli(out, controls[0], controls[1], target, condition)
        }
        _ => {
            // Barenco et al., Lemma 7.5: C^k(U) = C(W) · C^{k−1}(X) · C(W†)
            // · C^{k−1}(X) · C^{k−1}(W) with W² = U (circuit order below).
            let last = *controls.last().expect("at least three controls");
            let rest = &controls[..controls.len() - 1];
            let w = sqrt_unitary(matrix);
            let w_dagger = gates::adjoint(&w);
            emit_abc(out, &w, target, last, condition);
            emit_controlled_matrix(out, &gates::x(), last, rest, condition);
            emit_abc(out, &w_dagger, target, last, condition);
            emit_controlled_matrix(out, &gates::x(), last, rest, condition);
            emit_controlled_matrix(out, &w, target, rest, condition);
        }
    }
}

/// Emits an uncontrolled single-qubit unitary as Rz·Ry·Rz (global phase
/// dropped).
fn emit_single_qubit(
    out: &mut Vec<Operation>,
    matrix: &GateMatrix,
    target: usize,
    condition: Option<ClassicalCondition>,
) {
    let angles = zyz_decompose(matrix);
    push_rotation(out, StandardGate::Rz(angles.delta), target, condition);
    push_rotation(out, StandardGate::Ry(angles.gamma), target, condition);
    push_rotation(out, StandardGate::Rz(angles.beta), target, condition);
}

/// Emits the ABC decomposition of a singly-controlled unitary
/// (Nielsen & Chuang, Corollary 4.2).
fn emit_abc(
    out: &mut Vec<Operation>,
    matrix: &GateMatrix,
    target: usize,
    control: usize,
    condition: Option<ClassicalCondition>,
) {
    // Shortcut: a controlled X is already native.
    if approx_eq(matrix, &gates::x(), 1e-12) {
        push_cx(out, control, target, condition);
        return;
    }
    let angles = zyz_decompose(matrix);
    let alpha = angles.alpha;
    let beta = angles.beta;
    let gamma = angles.gamma;
    let delta = angles.delta;

    // C = Rz((δ−β)/2)
    push_rotation(
        out,
        StandardGate::Rz((delta - beta) / 2.0),
        target,
        condition,
    );
    push_cx(out, control, target, condition);
    // B = Ry(−γ/2) · Rz(−(δ+β)/2)
    push_rotation(
        out,
        StandardGate::Rz(-(delta + beta) / 2.0),
        target,
        condition,
    );
    push_rotation(out, StandardGate::Ry(-gamma / 2.0), target, condition);
    push_cx(out, control, target, condition);
    // A = Rz(β) · Ry(γ/2)
    push_rotation(out, StandardGate::Ry(gamma / 2.0), target, condition);
    push_rotation(out, StandardGate::Rz(beta), target, condition);
    // Phase correction on the control.
    push_rotation(out, StandardGate::Phase(alpha), control, condition);
}

/// Emits the standard 6-CX Toffoli realization.
fn emit_toffoli(
    out: &mut Vec<Operation>,
    c0: usize,
    c1: usize,
    target: usize,
    condition: Option<ClassicalCondition>,
) {
    let h = |out: &mut Vec<Operation>, q: usize| {
        out.push(with_condition(
            Operation::unitary(StandardGate::H, q, vec![]),
            condition,
        ));
    };
    let t = |out: &mut Vec<Operation>, q: usize| {
        out.push(with_condition(
            Operation::unitary(StandardGate::T, q, vec![]),
            condition,
        ));
    };
    let tdg = |out: &mut Vec<Operation>, q: usize| {
        out.push(with_condition(
            Operation::unitary(StandardGate::Tdg, q, vec![]),
            condition,
        ));
    };
    h(out, target);
    push_cx(out, c1, target, condition);
    tdg(out, target);
    push_cx(out, c0, target, condition);
    t(out, target);
    push_cx(out, c1, target, condition);
    tdg(out, target);
    push_cx(out, c0, target, condition);
    t(out, c1);
    t(out, target);
    h(out, target);
    push_cx(out, c0, c1, condition);
    t(out, c0);
    tdg(out, c1);
    push_cx(out, c0, c1, condition);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd::{Control, DdPackage, MEdge};

    /// Builds the dense system matrix of a unitary circuit with a fresh
    /// decision-diagram package.
    fn dense_matrix(circuit: &QuantumCircuit) -> Vec<Vec<dd::Complex>> {
        let mut package = DdPackage::new(circuit.num_qubits());
        let mut system: MEdge = package.identity();
        for op in circuit.iter() {
            if let OpKind::Unitary {
                gate,
                target,
                controls,
            } = &op.kind
            {
                let matrix = gate_matrix(*gate);
                let dd_controls: Vec<Control> = controls
                    .iter()
                    .map(|c| Control {
                        qubit: c.qubit,
                        positive: c.positive,
                    })
                    .collect();
                let gate_dd = package.make_gate(&matrix, *target, &dd_controls);
                system = package.mul_matrices(gate_dd, system);
            }
        }
        package.to_matrix(system)
    }

    /// Asserts that two unitary circuits have the same system matrix up to a
    /// global phase.
    fn assert_equivalent(original: &QuantumCircuit, decomposed: &QuantumCircuit) {
        assert_eq!(original.num_qubits(), decomposed.num_qubits());
        let dense_a = dense_matrix(original);
        let dense_b = dense_matrix(decomposed);
        // Find the first non-zero entry to fix the relative phase.
        let dim = dense_a.len();
        let mut phase = None;
        for i in 0..dim {
            for j in 0..dim {
                if dense_a[i][j].abs() > 1e-9 {
                    phase = Some(dense_b[i][j] / dense_a[i][j]);
                    break;
                }
            }
            if phase.is_some() {
                break;
            }
        }
        let phase = phase.expect("non-zero unitary");
        assert!(
            (phase.abs() - 1.0).abs() < 1e-6,
            "relative factor is not a phase: {phase:?}"
        );
        for i in 0..dim {
            for j in 0..dim {
                let scaled = dense_a[i][j] * phase;
                assert!(
                    (scaled - dense_b[i][j]).abs() < 1e-6,
                    "matrices differ at ({i}, {j}): {scaled:?} vs {:?}",
                    dense_b[i][j]
                );
            }
        }
    }

    #[test]
    fn plain_gates_and_cx_pass_through() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1).t(1);
        let decomposed = decompose_controls(&qc);
        assert_eq!(decomposed.expanded_operations, 0);
        assert_eq!(decomposed.circuit.ops(), qc.ops());
    }

    #[test]
    fn controlled_phase_decomposes_correctly() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.cp(0.7, 0, 1);
        let decomposed = decompose_controls(&qc);
        assert!(decomposed
            .circuit
            .ops()
            .iter()
            .all(|op| op.qubits().len() <= 2));
        assert_equivalent(&qc, &decomposed.circuit);
    }

    #[test]
    fn controlled_hadamard_and_rotations_decompose_correctly() {
        for gate in [
            StandardGate::H,
            StandardGate::Y,
            StandardGate::Z,
            StandardGate::S,
            StandardGate::T,
            StandardGate::Sx,
            StandardGate::Rx(0.9),
            StandardGate::Ry(-1.3),
            StandardGate::Rz(2.1),
            StandardGate::U(0.5, 0.2, -0.7),
        ] {
            let mut qc = QuantumCircuit::new(2, 0);
            qc.controlled_gate(gate, 1, vec![QuantumControl::pos(0)]);
            let decomposed = decompose_controls(&qc);
            assert_equivalent(&qc, &decomposed.circuit);
        }
    }

    #[test]
    fn negative_control_decomposes_correctly() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.controlled_gate(StandardGate::H, 1, vec![QuantumControl::neg(0)]);
        let decomposed = decompose_controls(&qc);
        assert_equivalent(&qc, &decomposed.circuit);
    }

    #[test]
    fn toffoli_decomposes_into_six_cx() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.ccx(0, 1, 2);
        let decomposed = decompose_controls(&qc);
        let cx_count = decomposed
            .circuit
            .ops()
            .iter()
            .filter(|op| op.qubits().len() == 2)
            .count();
        assert_eq!(cx_count, 6);
        assert_equivalent(&qc, &decomposed.circuit);
    }

    #[test]
    fn doubly_controlled_z_decomposes_correctly() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.controlled_gate(
            StandardGate::Z,
            2,
            vec![QuantumControl::pos(0), QuantumControl::pos(1)],
        );
        let decomposed = decompose_controls(&qc);
        assert_equivalent(&qc, &decomposed.circuit);
    }

    #[test]
    fn triply_controlled_x_decomposes_correctly() {
        let mut qc = QuantumCircuit::new(4, 0);
        qc.mcx(&[0, 1, 2], 3);
        let decomposed = decompose_controls(&qc);
        assert!(decomposed
            .circuit
            .ops()
            .iter()
            .all(|op| op.qubits().len() <= 2));
        assert_equivalent(&qc, &decomposed.circuit);
    }

    #[test]
    fn quadruply_controlled_phase_decomposes_correctly() {
        let mut qc = QuantumCircuit::new(5, 0);
        qc.controlled_gate(
            StandardGate::Phase(1.1),
            4,
            vec![
                QuantumControl::pos(0),
                QuantumControl::pos(1),
                QuantumControl::pos(2),
                QuantumControl::pos(3),
            ],
        );
        let decomposed = decompose_controls(&qc);
        assert!(decomposed
            .circuit
            .ops()
            .iter()
            .all(|op| op.qubits().len() <= 2));
        assert_equivalent(&qc, &decomposed.circuit);
    }

    #[test]
    fn classical_condition_is_propagated_to_every_emitted_gate() {
        let mut qc = QuantumCircuit::new(2, 1);
        qc.push(Operation::conditioned(
            StandardGate::H,
            1,
            vec![QuantumControl::pos(0)],
            ClassicalCondition::is_one(0),
        ));
        let decomposed = decompose_controls(&qc);
        assert!(decomposed
            .circuit
            .ops()
            .iter()
            .all(|op| op.condition == Some(ClassicalCondition::is_one(0))));
        assert!(decomposed.expanded_operations == 1);
    }

    #[test]
    fn measurements_and_resets_pass_through() {
        let mut qc = QuantumCircuit::new(3, 2);
        qc.h(0).measure(0, 0).reset(0).ccx(0, 1, 2).measure(2, 1);
        let decomposed = decompose_controls(&qc);
        assert_eq!(decomposed.circuit.measurement_count(), 2);
        assert_eq!(decomposed.circuit.reset_count(), 1);
    }
}
