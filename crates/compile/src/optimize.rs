//! Peephole optimization passes.
//!
//! Three conservative, semantics-preserving rewrites applied to a fixpoint:
//!
//! 1. removal of identity gates (`id`, zero-angle rotations),
//! 2. cancellation of wire-adjacent inverse gate pairs (`H·H`, `CX·CX`,
//!    `T·T†`, `P(θ)·P(−θ)`, …),
//! 3. merging of wire-adjacent rotations about the same axis
//!    (`Rz(a)·Rz(b) → Rz(a+b)`, likewise for `Rx`, `Ry` and `P`).
//!
//! Two operations are *wire-adjacent* when no operation in between acts on
//! any qubit of the first one; only unconditioned unitary gates are touched,
//! so dynamic primitives are never reordered or removed.

use circuit::{OpKind, Operation, QuantumCircuit, StandardGate};

/// Angles below this threshold are treated as zero.
const ANGLE_EPSILON: f64 = 1e-12;

/// Statistics of one [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizationReport {
    /// Inverse gate pairs that were cancelled.
    pub cancelled_pairs: usize,
    /// Rotation pairs that were merged into one gate.
    pub merged_rotations: usize,
    /// Identity gates that were removed.
    pub removed_identities: usize,
    /// Number of fixpoint iterations.
    pub iterations: usize,
}

impl OptimizationReport {
    /// Total number of eliminated operations.
    pub fn eliminated_operations(&self) -> usize {
        2 * self.cancelled_pairs + self.merged_rotations + self.removed_identities
    }
}

/// Runs the peephole passes on `circuit` until no further rewrite applies.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use compile::optimize;
///
/// let mut qc = QuantumCircuit::new(2, 0);
/// qc.h(0).h(0).cx(0, 1).cx(0, 1).t(1).tdg(1).rz(0.3, 0).rz(-0.1, 0);
/// let (optimized, report) = optimize(&qc);
/// assert_eq!(optimized.len(), 1); // only Rz(0.2) on qubit 0 survives
/// assert!(report.cancelled_pairs >= 3);
/// ```
pub fn optimize(circuit: &QuantumCircuit) -> (QuantumCircuit, OptimizationReport) {
    let mut report = OptimizationReport::default();
    let mut ops: Vec<Operation> = circuit.ops().to_vec();
    loop {
        report.iterations += 1;
        let before = ops.len();
        let removed = remove_identities(&mut ops);
        report.removed_identities += removed;
        let cancelled = cancel_inverse_pairs(&mut ops);
        report.cancelled_pairs += cancelled;
        let merged = merge_rotations(&mut ops);
        report.merged_rotations += merged;
        if ops.len() == before && removed == 0 && cancelled == 0 && merged == 0 {
            break;
        }
        if report.iterations > 32 {
            break;
        }
    }
    let mut out = QuantumCircuit::with_name(
        circuit.num_qubits(),
        circuit.num_bits(),
        format!("{}_optimized", circuit.name()),
    );
    for op in ops {
        out.push(op);
    }
    (out, report)
}

fn is_plain_unitary(op: &Operation) -> bool {
    matches!(op.kind, OpKind::Unitary { .. }) && op.condition.is_none()
}

fn is_identity_gate(op: &Operation) -> bool {
    match &op.kind {
        OpKind::Unitary { gate, .. } if op.condition.is_none() => {
            gate.is_identity()
                || matches!(gate,
                    StandardGate::Phase(t) | StandardGate::Rx(t) | StandardGate::Ry(t)
                    | StandardGate::Rz(t) if t.abs() < ANGLE_EPSILON)
        }
        _ => false,
    }
}

fn remove_identities(ops: &mut Vec<Operation>) -> usize {
    let before = ops.len();
    ops.retain(|op| !is_identity_gate(op));
    before - ops.len()
}

/// Index of the next operation after `start` that shares a qubit with
/// `qubits`, if any.
fn next_on_wires(ops: &[Operation], start: usize, qubits: &[usize]) -> Option<usize> {
    (start + 1..ops.len()).find(|&j| ops[j].qubits().iter().any(|q| qubits.contains(q)))
}

/// Returns `true` when `a` followed by `b` is the identity.
fn is_inverse_pair(a: &Operation, b: &Operation) -> bool {
    let (
        OpKind::Unitary {
            gate: gate_a,
            target: target_a,
            controls: controls_a,
        },
        OpKind::Unitary {
            gate: gate_b,
            target: target_b,
            controls: controls_b,
        },
    ) = (&a.kind, &b.kind)
    else {
        return false;
    };
    target_a == target_b && controls_a == controls_b && *gate_b == gate_a.inverse()
}

fn cancel_inverse_pairs(ops: &mut Vec<Operation>) -> usize {
    let mut cancelled = 0;
    let mut i = 0;
    while i < ops.len() {
        if !is_plain_unitary(&ops[i]) {
            i += 1;
            continue;
        }
        let qubits = ops[i].qubits();
        if let Some(j) = next_on_wires(ops, i, &qubits) {
            // The follower must act on exactly the same wires and be plain.
            if is_plain_unitary(&ops[j])
                && ops[j].qubits().len() == qubits.len()
                && is_inverse_pair(&ops[i], &ops[j])
            {
                ops.remove(j);
                ops.remove(i);
                cancelled += 1;
                i = i.saturating_sub(1);
                continue;
            }
        }
        i += 1;
    }
    cancelled
}

/// Merges two rotations of the same kind into one; returns the merged gate.
fn merged_rotation(a: StandardGate, b: StandardGate) -> Option<StandardGate> {
    match (a, b) {
        (StandardGate::Rz(x), StandardGate::Rz(y)) => Some(StandardGate::Rz(x + y)),
        (StandardGate::Rx(x), StandardGate::Rx(y)) => Some(StandardGate::Rx(x + y)),
        (StandardGate::Ry(x), StandardGate::Ry(y)) => Some(StandardGate::Ry(x + y)),
        (StandardGate::Phase(x), StandardGate::Phase(y)) => Some(StandardGate::Phase(x + y)),
        _ => None,
    }
}

fn merge_rotations(ops: &mut Vec<Operation>) -> usize {
    let mut merged = 0;
    let mut i = 0;
    while i < ops.len() {
        let candidate = match (&ops[i].kind, ops[i].condition) {
            (
                OpKind::Unitary {
                    gate,
                    target,
                    controls,
                },
                None,
            ) if controls.is_empty() => Some((*gate, *target)),
            _ => None,
        };
        let Some((gate_a, target)) = candidate else {
            i += 1;
            continue;
        };
        if let Some(j) = next_on_wires(ops, i, &[target]) {
            let follower = match (&ops[j].kind, ops[j].condition) {
                (
                    OpKind::Unitary {
                        gate,
                        target: t,
                        controls,
                    },
                    None,
                ) if controls.is_empty() && *t == target => Some(*gate),
                _ => None,
            };
            if let Some(gate_b) = follower {
                if let Some(combined) = merged_rotation(gate_a, gate_b) {
                    ops[i] = Operation::unitary(combined, target, vec![]);
                    ops.remove(j);
                    merged += 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::QuantumControl;

    #[test]
    fn identity_gates_are_removed() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.gate(StandardGate::I, 0).p(0.0, 0).rz(0.0, 0).h(0);
        let (optimized, report) = optimize(&qc);
        assert_eq!(optimized.len(), 1);
        assert_eq!(report.removed_identities, 3);
    }

    #[test]
    fn adjacent_self_inverse_gates_cancel() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).h(0).cx(0, 1).cx(0, 1).x(1).x(1);
        let (optimized, report) = optimize(&qc);
        assert!(optimized.is_empty());
        assert_eq!(report.cancelled_pairs, 3);
    }

    #[test]
    fn adjoint_pairs_cancel() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.s(0).sdg(0).t(0).tdg(0).p(0.4, 0).p(-0.4, 0);
        let (optimized, _) = optimize(&qc);
        assert!(optimized.is_empty());
    }

    #[test]
    fn cancellation_cascades_through_nested_pairs() {
        // H X X H: the inner pair cancels first, then the outer one.
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).x(0).x(0).h(0);
        let (optimized, report) = optimize(&qc);
        assert!(optimized.is_empty());
        assert_eq!(report.cancelled_pairs, 2);
    }

    #[test]
    fn blocking_gates_prevent_cancellation() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.cx(0, 1).x(1).cx(0, 1);
        let (optimized, report) = optimize(&qc);
        assert_eq!(optimized.len(), 3);
        assert_eq!(report.cancelled_pairs, 0);
    }

    #[test]
    fn gates_on_disjoint_wires_do_not_block() {
        // The Z on qubit 2 sits between the two CX(0, 1) but shares no wire.
        let mut qc = QuantumCircuit::new(3, 0);
        qc.cx(0, 1).z(2).cx(0, 1);
        let (optimized, _) = optimize(&qc);
        assert_eq!(optimized.len(), 1);
    }

    #[test]
    fn rotations_merge_and_cancel() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.rz(0.25, 0).rz(0.5, 0).rz(-0.75, 0);
        let (optimized, report) = optimize(&qc);
        assert!(optimized.is_empty());
        assert!(report.merged_rotations >= 1);
    }

    #[test]
    fn rotations_about_different_axes_do_not_merge() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.rz(0.25, 0).rx(0.5, 0);
        let (optimized, _) = optimize(&qc);
        assert_eq!(optimized.len(), 2);
    }

    #[test]
    fn controlled_gates_with_different_controls_do_not_cancel() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.cx(0, 2).cx(1, 2);
        let (optimized, _) = optimize(&qc);
        assert_eq!(optimized.len(), 2);
    }

    #[test]
    fn negative_and_positive_controls_are_distinguished() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.controlled_gate(StandardGate::X, 1, vec![QuantumControl::pos(0)]);
        qc.controlled_gate(StandardGate::X, 1, vec![QuantumControl::neg(0)]);
        let (optimized, _) = optimize(&qc);
        assert_eq!(optimized.len(), 2);
    }

    #[test]
    fn dynamic_primitives_are_never_touched() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).measure(0, 0).x_if(1, 0).reset(0).h(0).h(1).h(1);
        let (optimized, _) = optimize(&qc);
        assert_eq!(optimized.measurement_count(), 1);
        assert_eq!(optimized.reset_count(), 1);
        assert_eq!(optimized.counts().classically_controlled, 1);
        // Only the trailing H·H pair on qubit 1 cancels; the H gates on
        // qubit 0 are separated by dynamic operations.
        assert_eq!(optimized.counts().unitary, 2);
    }

    #[test]
    fn measurement_blocks_cancellation_across_it() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).measure(0, 0).h(0);
        let (optimized, report) = optimize(&qc);
        assert_eq!(optimized.len(), 3);
        assert_eq!(report.cancelled_pairs, 0);
    }

    #[test]
    fn report_counts_eliminated_operations() {
        let mut qc = QuantumCircuit::new(1, 0);
        qc.h(0).h(0).rz(0.1, 0).rz(0.2, 0).gate(StandardGate::I, 0);
        let (_, report) = optimize(&qc);
        assert_eq!(report.eliminated_operations(), 2 + 1 + 1);
        assert!(report.iterations >= 1);
    }
}
