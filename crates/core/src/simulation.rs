//! Simulative equivalence checking with random computational-basis stimuli.
//!
//! Instead of proving `U = U'`, this checker compares the action of both
//! circuits on a set of random basis states. A single mismatch disproves
//! equivalence; agreement on all stimuli yields
//! [`Equivalence::ProbablyEquivalent`]. For circuits that differ in more than
//! a measure-zero set of inputs, very few stimuli suffice in practice — the
//! rationale behind QCEC's simulation-driven checks.

use crate::equivalence::{Configuration, Equivalence};
use crate::unitary::CheckError;
use circuit::QuantumCircuit;
use dd::{Budget, LimitExceeded};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim::{SimError, StateVectorSimulator};
use std::time::{Duration, Instant};

/// Outcome of a simulative equivalence check.
#[derive(Debug, Clone)]
pub struct SimulativeCheck {
    /// The verdict: [`Equivalence::ProbablyEquivalent`] or
    /// [`Equivalence::NotEquivalent`].
    pub equivalence: Equivalence,
    /// Number of stimuli that were simulated.
    pub runs: usize,
    /// Worst (lowest) state fidelity observed across the stimuli.
    pub min_fidelity: f64,
    /// Wall-clock time of the check.
    pub duration: Duration,
    /// Aggregated decision-diagram memory telemetry of all simulator runs.
    pub memory: dd::MemoryStats,
}

/// Compares the action of two unitary circuits on random computational-basis
/// states.
///
/// # Errors
///
/// [`CheckError::RegisterMismatch`] when the register sizes differ,
/// [`CheckError::NonUnitaryCircuit`] when either circuit contains dynamic
/// primitives (reconstruct first).
pub fn check_simulative_equivalence(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &Configuration,
) -> Result<SimulativeCheck, CheckError> {
    check_simulative_equivalence_with(left, right, config, &Budget::unlimited())
}

/// Maps a simulator failure onto the checker's error type, keeping budget
/// interruptions distinguishable from genuinely unsupported circuits.
fn run_error(which: &'static str, error: SimError) -> CheckError {
    match error {
        SimError::Interrupted(reason) => CheckError::LimitExceeded(reason),
        other => CheckError::NonUnitaryCircuit {
            which,
            operation: other.to_string(),
        },
    }
}

/// Budget-aware variant of [`check_simulative_equivalence`].
///
/// The budget's cancel token is checked between stimuli and inside each
/// simulation run, so a cancelled check returns quickly even mid-circuit.
///
/// # Errors
///
/// Same as [`check_simulative_equivalence`], plus
/// [`CheckError::LimitExceeded`] when the budget stops the check.
pub fn check_simulative_equivalence_with(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &Configuration,
    budget: &Budget,
) -> Result<SimulativeCheck, CheckError> {
    check_simulative_equivalence_in(left, right, config, budget, None)
}

/// [`check_simulative_equivalence_with`] with an optional shared
/// decision-diagram store (see [`dd::SharedStore`]): both simulators attach
/// as workspaces, so the gate diagrams they build are shared with each other
/// and with every other racing scheme.
///
/// # Errors
///
/// Same as [`check_simulative_equivalence_with`].
pub fn check_simulative_equivalence_in(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &Configuration,
    budget: &Budget,
    store: Option<&std::sync::Arc<dd::SharedStore>>,
) -> Result<SimulativeCheck, CheckError> {
    if left.num_qubits() != right.num_qubits() {
        return Err(CheckError::RegisterMismatch {
            left: left.num_qubits(),
            right: right.num_qubits(),
        });
    }
    let start = Instant::now();
    let n = left.num_qubits();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut min_fidelity = 1.0f64;
    let mut runs = 0;
    let mut memory = dd::MemoryStats::default();

    let left_unitary = left.without_measurements();
    let right_unitary = right.without_measurements();

    for run in 0..config.simulation_runs.max(1) {
        if budget.is_cancelled() {
            return Err(CheckError::LimitExceeded(LimitExceeded::Cancelled));
        }
        // The first stimulus is always |0…0⟩ (the most common fixed input);
        // the remaining stimuli are random basis states.
        let bits: Vec<bool> = if run == 0 {
            vec![false; n]
        } else {
            (0..n).map(|_| rng.r#gen::<bool>()).collect()
        };
        // Both stimulus runs share one simulator (one package, one shared-
        // store attachment): a thread can only park one workspace at a GC
        // safe point, so a second simultaneous attachment would stall the
        // store's mid-race barrier collections into their deferral fallback.
        let mut sim = StateVectorSimulator::with_memory_and_initial_state_in(
            &bits,
            budget.clone(),
            config.memory,
            store,
        );
        sim.run(&left_unitary).map_err(|e| run_error("left", e))?;
        let fidelity = sim
            .fidelity_with_rerun(&right_unitary, &bits)
            .map_err(|e| run_error("right", e))?;
        memory = memory.merged_with(&sim.memory_stats());
        min_fidelity = min_fidelity.min(fidelity);
        runs += 1;
        if fidelity < 1.0 - config.tolerance {
            return Ok(SimulativeCheck {
                equivalence: Equivalence::NotEquivalent,
                runs,
                min_fidelity,
                duration: start.elapsed(),
                memory,
            });
        }
    }

    Ok(SimulativeCheck {
        equivalence: Equivalence::ProbablyEquivalent,
        runs,
        min_fidelity,
        duration: start.elapsed(),
        memory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorithms::{ghz, random};

    #[test]
    fn equivalent_circuits_pass_all_stimuli() {
        let a = ghz::ghz(5, false);
        let mut b = circuit::QuantumCircuit::new(5, 0);
        b.h(0);
        for q in 1..5 {
            b.h(q).cz(q - 1, q).h(q);
        }
        let check = check_simulative_equivalence(&a, &b, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::ProbablyEquivalent);
        assert!(check.min_fidelity > 1.0 - 1e-9);
        assert_eq!(check.runs, Configuration::default().simulation_runs);
    }

    #[test]
    fn different_circuits_are_detected() {
        let a = random::random_unitary_circuit(4, 20, 1);
        let mut b = a.clone();
        b.x(0);
        let check = check_simulative_equivalence(&a, &b, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::NotEquivalent);
        assert!(check.runs <= Configuration::default().simulation_runs);
    }

    #[test]
    fn phase_oracle_difference_requires_superposition_to_show_up() {
        // A circuit differing only by a CZ behaves identically on basis
        // states that never set both qubits; the first stimulus |00⟩ cannot
        // distinguish them, later random stimuli may. This documents the
        // "probably" in ProbablyEquivalent.
        let mut a = circuit::QuantumCircuit::new(2, 0);
        a.h(0);
        let mut b = circuit::QuantumCircuit::new(2, 0);
        b.h(0);
        b.cz(0, 1);
        let config = Configuration {
            simulation_runs: 16,
            ..Default::default()
        };
        let check = check_simulative_equivalence(&a, &b, &config).unwrap();
        // |x1⟩ stimuli reveal the difference; with 16 runs this is
        // overwhelmingly likely.
        assert_eq!(check.equivalence, Equivalence::NotEquivalent);
    }

    #[test]
    fn register_mismatch_is_rejected() {
        let a = ghz::ghz(3, false);
        let b = ghz::ghz(5, false);
        assert!(matches!(
            check_simulative_equivalence(&a, &b, &Configuration::default()),
            Err(CheckError::RegisterMismatch { .. })
        ));
    }

    #[test]
    fn deterministic_in_the_seed() {
        let a = random::random_unitary_circuit(3, 15, 7);
        let b = random::random_unitary_circuit(3, 15, 8);
        let config = Configuration::default();
        let first = check_simulative_equivalence(&a, &b, &config).unwrap();
        let second = check_simulative_equivalence(&a, &b, &config).unwrap();
        assert_eq!(first.equivalence, second.equivalence);
        assert_eq!(first.runs, second.runs);
    }
}
