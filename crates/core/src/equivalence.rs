//! Equivalence verdicts and configuration.

use std::fmt;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Equivalence {
    /// The circuits implement exactly the same unitary.
    Equivalent,
    /// The circuits implement the same unitary up to a global phase factor.
    EquivalentUpToGlobalPhase,
    /// The circuits were shown to differ.
    NotEquivalent,
    /// Simulation with random inputs found no counterexample (no proof of
    /// equivalence, but high confidence).
    ProbablyEquivalent,
    /// The check could not produce a verdict (e.g. register mismatch).
    NoInformation,
}

impl Equivalence {
    /// Returns `true` for any of the "considered equivalent" verdicts.
    pub fn considered_equivalent(self) -> bool {
        matches!(
            self,
            Equivalence::Equivalent
                | Equivalence::EquivalentUpToGlobalPhase
                | Equivalence::ProbablyEquivalent
        )
    }
}

impl fmt::Display for Equivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Equivalence::Equivalent => "equivalent",
            Equivalence::EquivalentUpToGlobalPhase => "equivalent up to global phase",
            Equivalence::NotEquivalent => "not equivalent",
            Equivalence::ProbablyEquivalent => "probably equivalent",
            Equivalence::NoInformation => "no information",
        };
        write!(f, "{text}")
    }
}

/// Gate-scheduling strategy used when building the miter `U · U'†`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Strategy {
    /// Build the full system matrices of both circuits and multiply them
    /// (the "reference" strategy). Simple but frequently exponential in
    /// intermediate diagram size.
    Reference,
    /// Apply one gate of the first circuit, then one inverted gate of the
    /// second circuit, alternating 1:1.
    OneToOne,
    /// Alternate the two circuits proportionally to their gate counts, so
    /// that both are exhausted at the same time. This is the strategy used by
    /// the paper's evaluation ("the generic 'proportional' strategy of
    /// QCEC").
    Proportional,
    /// Diff-guided alternation for pairs where the right circuit is the left
    /// circuit with gates *inserted* — the shape every routing pass
    /// produces. Matching gates are applied strictly in lockstep (one left
    /// gate, then its inverted right twin), inserted SWAP triplets are
    /// applied on the right side alone while the wire correspondence is
    /// updated, so the intermediate miter stays a literal qubit permutation
    /// instead of drifting into a large diagram. Gates that match neither
    /// way fall back to the proportional schedule, so the strategy degrades
    /// gracefully on pairs without insertion structure.
    Aligned,
}

/// Configuration of the equivalence-checking routines.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Configuration {
    /// Gate-scheduling strategy for functional (unitary) equivalence.
    pub strategy: Strategy,
    /// Numerical tolerance on the identity-fidelity criterion
    /// `|tr(U·U'†)| / 2^n ≥ 1 − tolerance`.
    pub tolerance: f64,
    /// Number of random-input simulation runs used by the simulative
    /// checker.
    pub simulation_runs: usize,
    /// Seed for the random stimuli of the simulative checker.
    pub seed: u64,
    /// Tolerance on the total-variation distance for fixed-input
    /// (distribution) equivalence.
    pub distribution_tolerance: f64,
    /// Decision-diagram memory sizing for the check's packages (compute-
    /// table bounds and the automatic garbage-collection threshold). The
    /// portfolio scheduler overrides the GC threshold per scheme from
    /// recorded peak-node telemetry.
    pub memory: dd::MemoryConfig,
}

impl Default for Configuration {
    fn default() -> Self {
        Configuration {
            strategy: Strategy::Proportional,
            tolerance: 1e-8,
            simulation_runs: 8,
            seed: 0xC0FFEE,
            distribution_tolerance: 1e-8,
            memory: dd::MemoryConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_classification() {
        assert!(Equivalence::Equivalent.considered_equivalent());
        assert!(Equivalence::EquivalentUpToGlobalPhase.considered_equivalent());
        assert!(Equivalence::ProbablyEquivalent.considered_equivalent());
        assert!(!Equivalence::NotEquivalent.considered_equivalent());
        assert!(!Equivalence::NoInformation.considered_equivalent());
    }

    #[test]
    fn default_configuration_uses_proportional_strategy() {
        let config = Configuration::default();
        assert_eq!(config.strategy, Strategy::Proportional);
        assert!(config.tolerance > 0.0);
        assert!(config.simulation_runs > 0);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Equivalence::Equivalent.to_string(), "equivalent");
        assert_eq!(
            Equivalence::EquivalentUpToGlobalPhase.to_string(),
            "equivalent up to global phase"
        );
        assert_eq!(Equivalence::NotEquivalent.to_string(), "not equivalent");
    }
}
