//! # qcec — equivalence checking of (dynamic) quantum circuits
//!
//! A Rust reproduction of the equivalence-checking flows from
//! *Burgholzer & Wille, "Handling Non-Unitaries in Quantum Circuit
//! Equivalence Checking" (DAC 2022)*, built on a from-scratch
//! decision-diagram package ([`dd`]).
//!
//! ## Capabilities
//!
//! * **Functional equivalence of unitary circuits**
//!   ([`check_functional_equivalence`]): builds the miter `U · U'†` as a
//!   decision diagram with a configurable gate schedule (reference, 1:1, or
//!   the QCEC-style *proportional* schedule) and tests it against the
//!   identity.
//! * **Simulative equivalence** ([`check_simulative_equivalence`]): compares
//!   the action of both circuits on random computational-basis stimuli.
//! * **Dynamic circuits, scheme 1** ([`verify_dynamic_functional`]): the
//!   paper's Section 4 — reset substitution plus deferred measurements turn a
//!   dynamic circuit into a unitary one, which is then checked functionally
//!   against the (static) reference.
//! * **Dynamic circuits, scheme 2** ([`verify_fixed_input`]): the paper's
//!   Section 5 — the complete measurement-outcome distribution of the dynamic
//!   circuit is extracted by branching simulation and compared with the
//!   distribution of the reference for the fixed all-zeros input.
//!
//! ## Budgets and cancellation
//!
//! Every check has a `*_with` variant taking a [`Budget`]
//! ([`check_functional_equivalence_with`], [`verify_dynamic_functional_with`],
//! [`verify_fixed_input_with`], [`check_simulative_equivalence_with`]) that
//! observes a shared [`CancelToken`] and optional node/leaf limits deep
//! inside the decision-diagram hot loops. This is the foundation of the
//! `portfolio` crate, which races all applicable schemes across threads and
//! cancels the losers the moment one scheme produces a conclusive verdict —
//! the same portfolio idea the QCEC tool uses in production. A check stopped
//! by its budget reports [`CheckError::LimitExceeded`] (or
//! `SimError::Interrupted` on the simulation side) instead of a verdict.
//!
//! ## Quick start
//!
//! ```
//! use algorithms::qpe;
//! use qcec::{verify_dynamic_functional, verify_fixed_input, Configuration};
//! use sim::ExtractionConfig;
//!
//! // The paper's running example: 3-bit phase estimation of U = P(3π/8).
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let static_qpe = qpe::qpe_static(phi, 3, true);
//! let iqpe = qpe::iqpe_dynamic(phi, 3);
//!
//! // Scheme 1: full functional equivalence after unitary reconstruction.
//! let functional = verify_dynamic_functional(&static_qpe, &iqpe, &Configuration::default())?;
//! assert!(functional.equivalence.considered_equivalent());
//!
//! // Scheme 2: same measurement-outcome distribution for the |0…0⟩ input.
//! let fixed = verify_fixed_input(
//!     &static_qpe,
//!     &iqpe,
//!     &Configuration::default(),
//!     &ExtractionConfig::default(),
//! )?;
//! assert!(fixed.equivalence.considered_equivalent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod dynamic;
mod equivalence;
mod simulation;
mod unitary;

pub use dynamic::{
    outcome_distribution, outcome_distribution_with, verify_dynamic_functional,
    verify_dynamic_functional_in, verify_dynamic_functional_with, verify_fixed_input,
    verify_fixed_input_in, verify_fixed_input_with, DynamicCheckError, FixedInputVerification,
    FunctionalVerification,
};
pub use equivalence::{Configuration, Equivalence, Strategy};
pub use simulation::{
    check_simulative_equivalence, check_simulative_equivalence_in,
    check_simulative_equivalence_with, SimulativeCheck,
};
pub use unitary::{
    check_functional_equivalence, check_functional_equivalence_in,
    check_functional_equivalence_with, CheckError, FunctionalCheck,
};

// Re-export the shared resource-limit vocabulary (and the shared-package
// store used for portfolio racing) so downstream users do not need a direct
// `dd` dependency to budget, cancel or co-locate checks.
pub use dd::{Budget, CancelToken, LimitExceeded, SharedStore, SharedStoreStats};
