//! Functional (unitary) equivalence checking of quantum circuits.
//!
//! Two circuits `G` and `G'` over the same register are equivalent exactly
//! when the miter `U · U'†` is the identity (possibly up to a global phase).
//! The miter is built as a decision diagram; the scheduling of gates from `G`
//! and inverted gates from `G'` is governed by the configured
//! [`Strategy`](crate::Strategy). Close to equivalent circuits the
//! proportional schedule keeps the intermediate diagram near the identity and
//! therefore small — the key insight of the underlying QCEC tool.

use crate::equivalence::{Configuration, Equivalence, Strategy};
use circuit::{OpKind, Operation, QuantumCircuit, StandardGate};
use dd::{Budget, DdPackage, LimitExceeded, MEdge};
use sim::{dd_controls, gate_matrix};
use std::time::{Duration, Instant};

/// Error raised when a circuit cannot be checked functionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The circuit contains dynamic primitives; reconstruct it first.
    NonUnitaryCircuit {
        /// Which circuit (`"left"` / `"right"`).
        which: &'static str,
        /// Offending operation.
        operation: String,
    },
    /// The circuits act on different register sizes.
    RegisterMismatch {
        /// Qubits of the left circuit.
        left: usize,
        /// Qubits of the right circuit.
        right: usize,
    },
    /// The check was stopped by its [`Budget`](dd::Budget): cancelled by a
    /// competing portfolio scheme or out of its node budget.
    LimitExceeded(LimitExceeded),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::NonUnitaryCircuit { which, operation } => write!(
                f,
                "the {which} circuit contains the non-unitary operation `{operation}`; \
                 apply the unitary reconstruction first"
            ),
            CheckError::RegisterMismatch { left, right } => write!(
                f,
                "register mismatch: left circuit has {left} qubits, right circuit has {right}"
            ),
            CheckError::LimitExceeded(reason) => write!(f, "check stopped early: {reason}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Outcome of a functional equivalence check, with diagnostics.
#[derive(Debug, Clone)]
pub struct FunctionalCheck {
    /// The verdict.
    pub equivalence: Equivalence,
    /// Normalised identity fidelity `|tr(U·U'†)| / 2^n` of the final miter.
    pub identity_fidelity: f64,
    /// Size (node count) of the final miter diagram.
    pub final_diagram_size: usize,
    /// Largest intermediate miter size observed.
    pub peak_diagram_size: usize,
    /// Wall-clock time of the check (the paper's `t_ver`).
    pub duration: Duration,
    /// Memory-system telemetry of the decision-diagram package (compute-table
    /// hit rates, garbage-collection runs, peak live nodes).
    pub memory: dd::MemoryStats,
}

/// Extracts the unitary gate sequence of a circuit, rejecting dynamic
/// primitives.
fn unitary_ops<'a>(
    circuit: &'a QuantumCircuit,
    which: &'static str,
) -> Result<Vec<&'a Operation>, CheckError> {
    let mut ops = Vec::with_capacity(circuit.len());
    for op in circuit.ops() {
        match (&op.kind, op.condition) {
            (OpKind::Barrier, _) | (OpKind::Measure { .. }, None) => {
                // Barriers are no-ops; trailing measurements of reconstructed
                // circuits do not affect the unitary functionality and are
                // skipped.
            }
            (OpKind::Unitary { .. }, None) => ops.push(op),
            _ => {
                return Err(CheckError::NonUnitaryCircuit {
                    which,
                    operation: op.to_string(),
                })
            }
        }
    }
    Ok(ops)
}

fn apply_left(package: &mut DdPackage, miter: MEdge, op: &Operation) -> MEdge {
    let OpKind::Unitary {
        gate,
        target,
        controls,
    } = &op.kind
    else {
        unreachable!("filtered to unitary operations")
    };
    let matrix = gate_matrix(*gate);
    let gate_dd = package.make_gate(&matrix, *target, &dd_controls(controls));
    package.mul_matrices(gate_dd, miter)
}

fn apply_right_inverse(package: &mut DdPackage, miter: MEdge, op: &Operation) -> MEdge {
    let OpKind::Unitary {
        gate,
        target,
        controls,
    } = &op.kind
    else {
        unreachable!("filtered to unitary operations")
    };
    let matrix = gate_matrix(gate.inverse());
    let gate_dd = package.make_gate(&matrix, *target, &dd_controls(controls));
    package.mul_matrices(miter, gate_dd)
}

/// Returns whether `right` is `left` with every wire renamed through
/// `mapping` (`mapping[left_wire] = right_wire`): same gate, mapped target,
/// and mapped controls in order.
fn ops_match(left: &Operation, right: &Operation, mapping: &[usize]) -> bool {
    let (
        OpKind::Unitary {
            gate: lg,
            target: lt,
            controls: lc,
        },
        OpKind::Unitary {
            gate: rg,
            target: rt,
            controls: rc,
        },
    ) = (&left.kind, &right.kind)
    else {
        return false;
    };
    lg == rg
        && mapping[*lt] == *rt
        && lc.len() == rc.len()
        && lc
            .iter()
            .zip(rc.iter())
            .all(|(l, r)| l.positive == r.positive && mapping[l.qubit] == r.qubit)
}

/// Detects the three-CNOT SWAP pattern `cx(a,b); cx(b,a); cx(a,b)` at the
/// head of `ops` (how the router and the layout-restoration emit SWAPs) and
/// returns the swapped wire pair.
fn swap_triplet(ops: &[&Operation]) -> Option<(usize, usize)> {
    let cx = |op: &Operation| -> Option<(usize, usize)> {
        match &op.kind {
            OpKind::Unitary {
                gate: StandardGate::X,
                target,
                controls,
            } if controls.len() == 1 && controls[0].positive => Some((controls[0].qubit, *target)),
            _ => None,
        }
    };
    let (a, b) = cx(ops.first()?)?;
    (cx(ops.get(1)?)? == (b, a) && cx(ops.get(2)?)? == (a, b)).then_some((a, b))
}

/// Checks whether two unitary circuits implement the same functionality.
///
/// Trailing measurements and barriers are ignored; any other non-unitary
/// operation is an error (run the reconstruction of the `transform` crate
/// first).
///
/// # Errors
///
/// [`CheckError::RegisterMismatch`] when the circuits act on different
/// numbers of qubits, [`CheckError::NonUnitaryCircuit`] when a circuit
/// contains resets or classically-controlled operations.
///
/// # Examples
///
/// A CNOT and its H·CZ·H decomposition realise the same GHZ-preparation
/// unitary:
///
/// ```
/// use algorithms::ghz;
/// use circuit::QuantumCircuit;
/// use qcec::{check_functional_equivalence, Configuration};
///
/// let reference = ghz::ghz(3, false);
/// let mut decomposed = QuantumCircuit::new(3, 0);
/// decomposed.h(0);
/// for q in 1..3 {
///     decomposed.h(q).cz(q - 1, q).h(q);
/// }
/// let check = check_functional_equivalence(&reference, &decomposed, &Configuration::default())?;
/// assert!(check.equivalence.considered_equivalent());
/// # Ok::<(), qcec::CheckError>(())
/// ```
pub fn check_functional_equivalence(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &Configuration,
) -> Result<FunctionalCheck, CheckError> {
    check_functional_equivalence_with(left, right, config, &Budget::unlimited())
}

/// Budget-aware variant of [`check_functional_equivalence`].
///
/// The miter construction observes `budget` cooperatively: when the budget's
/// cancel token fires or its node limit trips, the check stops within a few
/// hundred decision-diagram node allocations and returns
/// [`CheckError::LimitExceeded`]. This is what lets the portfolio engine
/// cancel losing schemes instead of letting them burn a core to completion.
///
/// # Errors
///
/// Same as [`check_functional_equivalence`], plus
/// [`CheckError::LimitExceeded`].
pub fn check_functional_equivalence_with(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &Configuration,
    budget: &Budget,
) -> Result<FunctionalCheck, CheckError> {
    check_functional_equivalence_in(left, right, config, budget, None)
}

/// [`check_functional_equivalence_with`] with an optional shared
/// decision-diagram store (see [`dd::SharedStore`]): the miter package then
/// attaches as a workspace, so the gate diagrams and intermediate miter
/// structure are shared with every other scheme racing on the same store.
///
/// # Errors
///
/// Same as [`check_functional_equivalence_with`].
pub fn check_functional_equivalence_in(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    config: &Configuration,
    budget: &Budget,
    store: Option<&std::sync::Arc<dd::SharedStore>>,
) -> Result<FunctionalCheck, CheckError> {
    if left.num_qubits() != right.num_qubits() {
        return Err(CheckError::RegisterMismatch {
            left: left.num_qubits(),
            right: right.num_qubits(),
        });
    }
    let start = Instant::now();
    let n = left.num_qubits();
    let left_ops = unitary_ops(left, "left")?;
    let right_ops = unitary_ops(right, "right")?;

    let mut package = DdPackage::with_store_config(store, n, budget.clone(), config.memory);
    let mut miter = package.identity();
    let mut peak = package.matrix_size(miter);

    match config.strategy {
        Strategy::Reference => {
            for op in &left_ops {
                miter = apply_left(&mut package, miter, op);
                if let Some(reason) = package.limit_exceeded() {
                    return Err(CheckError::LimitExceeded(reason));
                }
                peak = peak.max(package.matrix_size(miter));
            }
            for op in &right_ops {
                miter = apply_right_inverse(&mut package, miter, op);
                if let Some(reason) = package.limit_exceeded() {
                    return Err(CheckError::LimitExceeded(reason));
                }
                peak = peak.max(package.matrix_size(miter));
            }
        }
        Strategy::OneToOne | Strategy::Proportional => {
            // Interleave gates of the left circuit with inverted gates of the
            // right circuit. For the proportional schedule the side that lags
            // behind in *relative* progress goes next, so that both circuits
            // are exhausted at (roughly) the same time and the intermediate
            // miter stays close to the identity for near-equivalent circuits.
            let total_left = left_ops.len().max(1);
            let total_right = right_ops.len().max(1);
            let mut li = 0;
            let mut ri = 0;
            let mut steps = 0usize;
            while li < left_ops.len() || ri < right_ops.len() {
                let take_left = if li >= left_ops.len() {
                    false
                } else if ri >= right_ops.len() {
                    true
                } else {
                    match config.strategy {
                        Strategy::OneToOne => li <= ri,
                        // Compare progress fractions li/L vs ri/R without
                        // floating point: li·R ≤ ri·L.
                        Strategy::Proportional => li * total_right <= ri * total_left,
                        Strategy::Reference | Strategy::Aligned => unreachable!(),
                    }
                };
                if take_left {
                    miter = apply_left(&mut package, miter, left_ops[li]);
                    li += 1;
                } else {
                    miter = apply_right_inverse(&mut package, miter, right_ops[ri]);
                    ri += 1;
                }
                if let Some(reason) = package.limit_exceeded() {
                    return Err(CheckError::LimitExceeded(reason));
                }
                steps += 1;
                if steps.is_multiple_of(50) {
                    peak = peak.max(package.matrix_size(miter));
                }
            }
        }
        Strategy::Aligned => {
            // Two-pointer diff walk. `mapping[l] = r` is the current wire
            // correspondence: after the right side applies an inserted SWAP,
            // left wires living on the swapped right wires trade places. At
            // every point where the pointers are in sync the partial miter
            // equals the inverse of that wire permutation — a linear-size
            // diagram — so insertion-only pairs (routing, layout
            // restoration) never leave the cheap regime.
            let total_left = left_ops.len().max(1);
            let total_right = right_ops.len().max(1);
            let mut mapping: Vec<usize> = (0..n).collect();
            let mut li = 0;
            let mut ri = 0;
            let mut steps = 0usize;
            while li < left_ops.len() || ri < right_ops.len() {
                let matched = li < left_ops.len()
                    && ri < right_ops.len()
                    && ops_match(left_ops[li], right_ops[ri], &mapping);
                if matched {
                    miter = apply_left(&mut package, miter, left_ops[li]);
                    li += 1;
                    miter = apply_right_inverse(&mut package, miter, right_ops[ri]);
                    ri += 1;
                } else if let Some((a, b)) = swap_triplet(&right_ops[ri..]) {
                    // An inserted SWAP: consume all three CNOTs on the right
                    // side and track the wire exchange.
                    for _ in 0..3 {
                        miter = apply_right_inverse(&mut package, miter, right_ops[ri]);
                        ri += 1;
                    }
                    for wire in &mut mapping {
                        if *wire == a {
                            *wire = b;
                        } else if *wire == b {
                            *wire = a;
                        }
                    }
                } else {
                    // No insertion structure here — take one proportional
                    // step so unrelated pairs still terminate with the same
                    // cost shape as `Proportional`.
                    let take_left = li < left_ops.len()
                        && (ri >= right_ops.len() || li * total_right <= ri * total_left);
                    if take_left {
                        miter = apply_left(&mut package, miter, left_ops[li]);
                        li += 1;
                    } else {
                        miter = apply_right_inverse(&mut package, miter, right_ops[ri]);
                        ri += 1;
                    }
                }
                if let Some(reason) = package.limit_exceeded() {
                    return Err(CheckError::LimitExceeded(reason));
                }
                steps += 1;
                if steps.is_multiple_of(50) {
                    peak = peak.max(package.matrix_size(miter));
                }
            }
        }
    }

    let identity_fidelity = package.identity_fidelity(miter);
    let equivalence = if identity_fidelity >= 1.0 - config.tolerance {
        // Distinguish a genuine identity from one with a global phase by
        // looking at the (complex) trace direction.
        let trace = package.trace(miter);
        let dim = 2f64.powi(n as i32);
        if (trace.re / dim - 1.0).abs() < config.tolerance
            && (trace.im / dim).abs() < config.tolerance
        {
            Equivalence::Equivalent
        } else {
            Equivalence::EquivalentUpToGlobalPhase
        }
    } else {
        Equivalence::NotEquivalent
    };

    Ok(FunctionalCheck {
        equivalence,
        identity_fidelity,
        final_diagram_size: package.matrix_size(miter),
        peak_diagram_size: peak,
        duration: start.elapsed(),
        memory: package.memory_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorithms::{ghz, qft, random};

    #[test]
    fn identical_circuits_are_equivalent() {
        let qc = random::random_unitary_circuit(4, 24, 3);
        for strategy in [
            Strategy::Reference,
            Strategy::OneToOne,
            Strategy::Proportional,
        ] {
            let config = Configuration {
                strategy,
                ..Default::default()
            };
            let check = check_functional_equivalence(&qc, &qc, &config).unwrap();
            assert_eq!(check.equivalence, Equivalence::Equivalent, "{strategy:?}");
            assert!((check.identity_fidelity - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cnot_decomposition_is_equivalent() {
        let a = ghz::ghz(6, false);
        let mut b = circuit::QuantumCircuit::new(6, 0);
        b.h(0);
        for q in 1..6 {
            b.h(q).cz(q - 1, q).h(q);
        }
        let check = check_functional_equivalence(&a, &b, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::Equivalent);
    }

    #[test]
    fn fixed_input_equivalent_circuits_can_differ_functionally() {
        // The log-depth GHZ preparation produces the same state from |0…0⟩
        // but is a different unitary.
        let a = ghz::ghz(4, false);
        let b = ghz::ghz_log_depth(4, false);
        let check = check_functional_equivalence(&a, &b, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::NotEquivalent);
    }

    #[test]
    fn detects_non_equivalence() {
        let a = ghz::ghz(4, false);
        let mut b = ghz::ghz(4, false);
        b.z(2);
        let check = check_functional_equivalence(&a, &b, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::NotEquivalent);
        assert!(check.identity_fidelity < 1.0 - 1e-3);
    }

    #[test]
    fn detects_global_phase_difference() {
        use circuit::QuantumCircuit;
        let theta = 0.9;
        let mut a = QuantumCircuit::new(1, 0);
        a.rz(theta, 0);
        let mut b = QuantumCircuit::new(1, 0);
        b.p(theta, 0);
        let check = check_functional_equivalence(&a, &b, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::EquivalentUpToGlobalPhase);
    }

    #[test]
    fn circuit_against_its_inverse_composition_is_identity() {
        let qc = random::random_unitary_circuit(5, 40, 9);
        let inv = qc.inverse().unwrap();
        let mut composed = circuit::QuantumCircuit::new(5, 0);
        composed.append(&qc);
        composed.append(&inv);
        let empty = circuit::QuantumCircuit::new(5, 0);
        let check =
            check_functional_equivalence(&composed, &empty, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::Equivalent);
    }

    #[test]
    fn trailing_measurements_are_ignored() {
        let with = ghz::ghz(3, true);
        let without = ghz::ghz(3, false);
        let check =
            check_functional_equivalence(&with, &without, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::Equivalent);
    }

    #[test]
    fn rejects_dynamic_circuits() {
        let mut dynamic = circuit::QuantumCircuit::new(2, 1);
        dynamic.h(0).measure(0, 0).x_if(1, 0);
        let static_c = ghz::ghz(2, false);
        assert!(matches!(
            check_functional_equivalence(&dynamic, &static_c, &Configuration::default()),
            Err(CheckError::NonUnitaryCircuit { which: "left", .. })
        ));
    }

    #[test]
    fn rejects_register_mismatch() {
        let a = ghz::ghz(3, false);
        let b = ghz::ghz(4, false);
        assert!(matches!(
            check_functional_equivalence(&a, &b, &Configuration::default()),
            Err(CheckError::RegisterMismatch { left: 3, right: 4 })
        ));
    }

    #[test]
    fn qft_against_itself_with_reordered_rotations() {
        // The controlled-phase rotations within one QFT level commute; a
        // reversed ordering must still be equivalent.
        let n = 5;
        let a = qft::qft_static(n, None, false);
        let mut b = circuit::QuantumCircuit::new(n, 0);
        for j in (0..n).rev() {
            b.h(j);
            for k in 0..j {
                let angle = std::f64::consts::PI / (1u64 << (j - k)) as f64;
                b.cp(angle, k, j);
            }
        }
        let check = check_functional_equivalence(&a, &b, &Configuration::default()).unwrap();
        assert_eq!(check.equivalence, Equivalence::Equivalent);
    }

    #[test]
    fn proportional_strategy_keeps_peak_small_for_identical_circuits() {
        let qc = qft::qft_static(8, None, false);
        let proportional = check_functional_equivalence(
            &qc,
            &qc,
            &Configuration {
                strategy: Strategy::Proportional,
                ..Default::default()
            },
        )
        .unwrap();
        let reference = check_functional_equivalence(
            &qc,
            &qc,
            &Configuration {
                strategy: Strategy::Reference,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(proportional.peak_diagram_size <= reference.peak_diagram_size);
        assert_eq!(proportional.equivalence, Equivalence::Equivalent);
        assert_eq!(reference.equivalence, Equivalence::Equivalent);
    }

    /// Rebuilds `left` as a router would: every gate re-emitted through the
    /// evolving wire mapping, with SWAP triplets inserted at the given gate
    /// indices (swapping adjacent wires `w`/`w+1`).
    fn insert_swaps(
        left: &circuit::QuantumCircuit,
        at: &[(usize, usize)],
    ) -> circuit::QuantumCircuit {
        let n = left.num_qubits();
        let mut mapping: Vec<usize> = (0..n).collect();
        let mut routed = circuit::QuantumCircuit::new(n, left.num_bits());
        for (index, op) in left.ops().iter().enumerate() {
            for &(gate_index, wire) in at {
                if gate_index == index {
                    routed.swap(wire, wire + 1);
                    for w in &mut mapping {
                        if *w == wire {
                            *w = wire + 1;
                        } else if *w == wire + 1 {
                            *w = wire;
                        }
                    }
                }
            }
            let OpKind::Unitary {
                gate,
                target,
                controls,
            } = &op.kind
            else {
                continue;
            };
            let mapped: Vec<circuit::QuantumControl> = controls
                .iter()
                .map(|c| circuit::QuantumControl {
                    qubit: mapping[c.qubit],
                    positive: c.positive,
                })
                .collect();
            routed.controlled_gate(*gate, mapping[*target], mapped);
        }
        // Restore the layout with adjacent SWAPs (as `restore_layout` does),
        // so the routed circuit implements the same unitary.
        let mut occupant: Vec<usize> = (0..n).collect();
        for (logical, &physical) in mapping.iter().enumerate() {
            occupant[physical] = logical;
        }
        let mut sorted = false;
        while !sorted {
            sorted = true;
            for w in 0..n - 1 {
                if occupant[w] > occupant[w + 1] {
                    routed.swap(w, w + 1);
                    occupant.swap(w, w + 1);
                    sorted = false;
                }
            }
        }
        routed
    }

    #[test]
    fn aligned_strategy_tracks_inserted_swaps() {
        // A "routed" variant of a QFT: SWAP triplets inserted mid-circuit,
        // every later gate re-emitted on the permuted wires. The aligned
        // schedule must stay in lockstep (same verdict as proportional, and
        // a peak no worse), because this is exactly the insertion shape it
        // was built for.
        let left = qft::qft_static(6, None, false);
        let routed = insert_swaps(&left, &[(3, 0), (7, 2), (11, 4), (14, 1)]);
        let aligned = check_functional_equivalence(
            &left,
            &routed,
            &Configuration {
                strategy: Strategy::Aligned,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(aligned.equivalence, Equivalence::Equivalent);
        let proportional = check_functional_equivalence(
            &left,
            &routed,
            &Configuration {
                strategy: Strategy::Proportional,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(proportional.equivalence, Equivalence::Equivalent);
        assert!(
            aligned.peak_diagram_size <= proportional.peak_diagram_size,
            "aligned peak {} exceeds proportional peak {}",
            aligned.peak_diagram_size,
            proportional.peak_diagram_size
        );
    }

    #[test]
    fn aligned_strategy_refutes_corrupted_insertion_pairs() {
        let left = qft::qft_static(5, None, false);
        let mut routed = insert_swaps(&left, &[(4, 1), (9, 3)]);
        routed.z(2);
        let check = check_functional_equivalence(
            &left,
            &routed,
            &Configuration {
                strategy: Strategy::Aligned,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(check.equivalence, Equivalence::NotEquivalent);
    }

    #[test]
    fn aligned_strategy_falls_back_gracefully_on_unrelated_pairs() {
        // No insertion structure at all: a CNOT ladder against its H·CZ·H
        // decomposition, and a genuinely different pair. The aligned
        // schedule must degrade to the proportional behaviour, not
        // misjudge.
        let a = ghz::ghz(6, false);
        let mut b = circuit::QuantumCircuit::new(6, 0);
        b.h(0);
        for q in 1..6 {
            b.h(q).cz(q - 1, q).h(q);
        }
        let config = Configuration {
            strategy: Strategy::Aligned,
            ..Default::default()
        };
        let check = check_functional_equivalence(&a, &b, &config).unwrap();
        assert_eq!(check.equivalence, Equivalence::Equivalent);
        let different =
            check_functional_equivalence(&a, &ghz::ghz_log_depth(6, false), &config).unwrap();
        assert_eq!(different.equivalence, Equivalence::NotEquivalent);
    }
}
