//! Equivalence checking of *dynamic* quantum circuits — the paper's two
//! verification flows.
//!
//! * [`verify_dynamic_functional`]: full functional verification via the
//!   Section 4 transformation (reset substitution + deferred measurements)
//!   followed by conventional unitary equivalence checking.
//! * [`verify_fixed_input`]: fixed-input verification via the Section 5
//!   extraction of the measurement-outcome distribution, compared against the
//!   distribution of the other circuit.

use crate::equivalence::{Configuration, Equivalence};
use crate::unitary::{check_functional_equivalence_in, CheckError, FunctionalCheck};
use circuit::QuantumCircuit;
use dd::{Budget, LimitExceeded, SharedStore};
use sim::{
    extract_distribution_budgeted_in, ExtractionConfig, OutcomeDistribution, SimError,
    StateVectorSimulator,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};
use transform::{align_to_reference, reconstruct_unitary, TransformError};

/// Error raised by the dynamic verification flows.
#[derive(Debug)]
pub enum DynamicCheckError {
    /// The unitary reconstruction failed.
    Transform(TransformError),
    /// The underlying functional check failed.
    Check(CheckError),
    /// A simulation or extraction failed.
    Simulation(SimError),
}

impl fmt::Display for DynamicCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicCheckError::Transform(e) => write!(f, "transformation failed: {e}"),
            DynamicCheckError::Check(e) => write!(f, "equivalence check failed: {e}"),
            DynamicCheckError::Simulation(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for DynamicCheckError {}

impl From<TransformError> for DynamicCheckError {
    fn from(e: TransformError) -> Self {
        DynamicCheckError::Transform(e)
    }
}

impl From<CheckError> for DynamicCheckError {
    fn from(e: CheckError) -> Self {
        DynamicCheckError::Check(e)
    }
}

impl From<SimError> for DynamicCheckError {
    fn from(e: SimError) -> Self {
        DynamicCheckError::Simulation(e)
    }
}

/// Report of a full functional verification of a dynamic circuit against a
/// static reference.
#[derive(Debug, Clone)]
pub struct FunctionalVerification {
    /// The verdict.
    pub equivalence: Equivalence,
    /// Time spent transforming the dynamic circuit (`t_trans`).
    pub transformation_time: Duration,
    /// Time spent in the unitary equivalence check (`t_ver`).
    pub verification_time: Duration,
    /// Number of fresh qubits the reconstruction introduced.
    pub added_qubits: usize,
    /// Diagnostics of the underlying functional check.
    pub check: FunctionalCheck,
}

/// Verifies that a dynamic circuit realises the same functionality as a
/// static reference circuit (the paper's Section 4 flow).
///
/// Both circuits may contain dynamic primitives; each is reconstructed into a
/// unitary circuit first. The reconstructed dynamic circuit is aligned to the
/// reference through its measurement bits, so the classical outputs define
/// which qubit is which.
///
/// # Errors
///
/// Propagates transformation and checking errors (register mismatch after
/// reconstruction, non-deferrable measurements, …).
///
/// # Examples
///
/// ```
/// use algorithms::qpe;
/// use qcec::{verify_dynamic_functional, Configuration};
///
/// let phi = 3.0 * std::f64::consts::PI / 8.0;
/// let static_qpe = qpe::qpe_static(phi, 3, true);
/// let iqpe = qpe::iqpe_dynamic(phi, 3);
/// let report = verify_dynamic_functional(&static_qpe, &iqpe, &Configuration::default())?;
/// assert!(report.equivalence.considered_equivalent());
/// # Ok::<(), qcec::DynamicCheckError>(())
/// ```
pub fn verify_dynamic_functional(
    reference: &QuantumCircuit,
    dynamic: &QuantumCircuit,
    config: &Configuration,
) -> Result<FunctionalVerification, DynamicCheckError> {
    verify_dynamic_functional_with(reference, dynamic, config, &Budget::unlimited())
}

/// Budget-aware variant of [`verify_dynamic_functional`].
///
/// The unitary reconstruction checks the budget's cancel token between
/// passes, and the functional equivalence check observes the budget inside
/// the miter construction (see
/// [`check_functional_equivalence_with`](crate::check_functional_equivalence_with)).
///
/// # Errors
///
/// Same as [`verify_dynamic_functional`], plus
/// [`CheckError::LimitExceeded`] wrapped in [`DynamicCheckError::Check`].
pub fn verify_dynamic_functional_with(
    reference: &QuantumCircuit,
    dynamic: &QuantumCircuit,
    config: &Configuration,
    budget: &Budget,
) -> Result<FunctionalVerification, DynamicCheckError> {
    verify_dynamic_functional_in(reference, dynamic, config, budget, None)
}

/// [`verify_dynamic_functional_with`] with an optional shared
/// decision-diagram store (see [`dd::SharedStore`]): the functional check
/// after reconstruction attaches as a workspace of the store, sharing gate
/// diagrams and miter structure with the other racing schemes.
///
/// # Errors
///
/// Same as [`verify_dynamic_functional_with`].
pub fn verify_dynamic_functional_in(
    reference: &QuantumCircuit,
    dynamic: &QuantumCircuit,
    config: &Configuration,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> Result<FunctionalVerification, DynamicCheckError> {
    let cancelled =
        || DynamicCheckError::Check(CheckError::LimitExceeded(LimitExceeded::Cancelled));
    // Reconstruct both sides (a static reference passes through unchanged).
    let reference_rec = reconstruct_unitary(reference)?;
    if budget.is_cancelled() {
        return Err(cancelled());
    }
    let dynamic_rec = reconstruct_unitary(dynamic)?;
    let transformation_time = reference_rec.duration + dynamic_rec.duration;

    if budget.is_cancelled() {
        return Err(cancelled());
    }
    let aligned = align_to_reference(&reference_rec.circuit, &dynamic_rec.circuit)?;

    let start = Instant::now();
    let check =
        check_functional_equivalence_in(&reference_rec.circuit, &aligned, config, budget, store)?;
    let verification_time = start.elapsed();

    Ok(FunctionalVerification {
        equivalence: check.equivalence,
        transformation_time,
        verification_time,
        added_qubits: dynamic_rec.added_qubits,
        check,
    })
}

/// Report of a fixed-input (distribution) verification.
#[derive(Debug, Clone)]
pub struct FixedInputVerification {
    /// The verdict.
    pub equivalence: Equivalence,
    /// Total-variation distance between the two distributions.
    pub total_variation_distance: f64,
    /// Distribution of the first circuit.
    pub reference_distribution: OutcomeDistribution,
    /// Distribution of the second circuit.
    pub dynamic_distribution: OutcomeDistribution,
    /// Time to obtain the reference distribution (`t_sim` when the reference
    /// is static).
    pub reference_time: Duration,
    /// Time to obtain the dynamic circuit's distribution (`t_extract`).
    pub dynamic_time: Duration,
    /// Aggregated decision-diagram memory telemetry of both distribution
    /// computations.
    pub memory: dd::MemoryStats,
}

/// Obtains the measurement-outcome distribution of a circuit for the
/// all-zeros input: by plain simulation when the circuit is static, by the
/// Section 5 extraction scheme when it is dynamic.
pub fn outcome_distribution(
    circuit: &QuantumCircuit,
    extraction: &ExtractionConfig,
) -> Result<(OutcomeDistribution, Duration), DynamicCheckError> {
    outcome_distribution_with(circuit, extraction, &Budget::unlimited())
}

/// Budget-aware variant of [`outcome_distribution`]: both the branching
/// extraction and the plain simulation stop cooperatively when the budget's
/// cancel token fires or a resource limit trips.
///
/// # Errors
///
/// Propagates simulation/extraction errors, including
/// [`SimError::Interrupted`] wrapped in [`DynamicCheckError::Simulation`].
pub fn outcome_distribution_with(
    circuit: &QuantumCircuit,
    extraction: &ExtractionConfig,
    budget: &Budget,
) -> Result<(OutcomeDistribution, Duration), DynamicCheckError> {
    let (distribution, duration, _) =
        outcome_distribution_telemetry(circuit, extraction, budget, None)?;
    Ok((distribution, duration))
}

/// [`outcome_distribution_with`] plus the decision-diagram memory telemetry
/// of the computation.
fn outcome_distribution_telemetry(
    circuit: &QuantumCircuit,
    extraction: &ExtractionConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> Result<(OutcomeDistribution, Duration, dd::MemoryStats), DynamicCheckError> {
    let start = Instant::now();
    if circuit.is_dynamic() {
        let result = extract_distribution_budgeted_in(circuit, None, extraction, budget, store)?;
        Ok((result.distribution, start.elapsed(), result.memory))
    } else {
        let mut sim =
            StateVectorSimulator::with_budget_in(circuit.num_qubits(), budget.clone(), store);
        sim.run(circuit)?;
        let dist = sim.outcome_distribution();
        let memory = sim.memory_stats();
        Ok((dist, start.elapsed(), memory))
    }
}

/// Verifies that two circuits produce the same distribution of measurement
/// outcomes for the all-zeros input state (the paper's Section 5 flow).
///
/// # Errors
///
/// Propagates simulation/extraction errors; the distributions must be over
/// the same number of classical bits (otherwise the verdict is
/// [`Equivalence::NoInformation`]).
pub fn verify_fixed_input(
    reference: &QuantumCircuit,
    dynamic: &QuantumCircuit,
    config: &Configuration,
    extraction: &ExtractionConfig,
) -> Result<FixedInputVerification, DynamicCheckError> {
    verify_fixed_input_with(reference, dynamic, config, extraction, &Budget::unlimited())
}

/// Budget-aware variant of [`verify_fixed_input`]; see
/// [`outcome_distribution_with`] for how the budget is observed.
///
/// # Errors
///
/// Same as [`verify_fixed_input`], plus [`SimError::Interrupted`] wrapped in
/// [`DynamicCheckError::Simulation`].
pub fn verify_fixed_input_with(
    reference: &QuantumCircuit,
    dynamic: &QuantumCircuit,
    config: &Configuration,
    extraction: &ExtractionConfig,
    budget: &Budget,
) -> Result<FixedInputVerification, DynamicCheckError> {
    verify_fixed_input_in(reference, dynamic, config, extraction, budget, None)
}

/// [`verify_fixed_input_with`] with an optional shared decision-diagram
/// store (see [`dd::SharedStore`]): both distribution computations attach as
/// workspaces, sharing structure with each other and the racing schemes.
///
/// # Errors
///
/// Same as [`verify_fixed_input_with`].
pub fn verify_fixed_input_in(
    reference: &QuantumCircuit,
    dynamic: &QuantumCircuit,
    config: &Configuration,
    extraction: &ExtractionConfig,
    budget: &Budget,
    store: Option<&Arc<SharedStore>>,
) -> Result<FixedInputVerification, DynamicCheckError> {
    let (reference_distribution, reference_time, reference_memory) =
        outcome_distribution_telemetry(reference, extraction, budget, store)?;
    let (dynamic_distribution, dynamic_time, dynamic_memory) =
        outcome_distribution_telemetry(dynamic, extraction, budget, store)?;
    let memory = reference_memory.merged_with(&dynamic_memory);

    if reference_distribution.n_bits() != dynamic_distribution.n_bits() {
        return Ok(FixedInputVerification {
            equivalence: Equivalence::NoInformation,
            total_variation_distance: 1.0,
            reference_distribution,
            dynamic_distribution,
            reference_time,
            dynamic_time,
            memory,
        });
    }

    let tvd = reference_distribution.total_variation_distance(&dynamic_distribution);
    let equivalence = if tvd <= config.distribution_tolerance {
        Equivalence::Equivalent
    } else {
        Equivalence::NotEquivalent
    };
    Ok(FixedInputVerification {
        equivalence,
        total_variation_distance: tvd,
        reference_distribution,
        dynamic_distribution,
        reference_time,
        dynamic_time,
        memory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use algorithms::{bv, qft, qpe};

    #[test]
    fn iqpe_is_functionally_equivalent_to_qpe() {
        // The paper's Example 6 at 3-bit precision.
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let static_qpe = qpe::qpe_static(phi, 3, true);
        let iqpe = qpe::iqpe_dynamic(phi, 3);
        let report =
            verify_dynamic_functional(&static_qpe, &iqpe, &Configuration::default()).unwrap();
        assert!(report.equivalence.considered_equivalent());
        assert_eq!(report.added_qubits, 2);
        assert!(report.check.identity_fidelity > 1.0 - 1e-8);
    }

    #[test]
    fn dynamic_bv_is_functionally_equivalent_to_static_bv() {
        let hidden = bv::random_hidden_string(6, 11);
        let static_bv = bv::bv_static(&hidden, true);
        let dynamic_bv = bv::bv_dynamic(&hidden);
        let report =
            verify_dynamic_functional(&static_bv, &dynamic_bv, &Configuration::default()).unwrap();
        assert!(report.equivalence.considered_equivalent());
    }

    #[test]
    fn dynamic_qft_is_functionally_equivalent_to_static_qft() {
        let n = 5;
        let static_qft = qft::qft_static(n, None, true);
        let dynamic_qft = qft::qft_dynamic(n);
        let report =
            verify_dynamic_functional(&static_qft, &dynamic_qft, &Configuration::default())
                .unwrap();
        assert!(report.equivalence.considered_equivalent());
    }

    #[test]
    fn functional_check_detects_wrong_hidden_string() {
        let static_bv = bv::bv_static(&[true, false, true], true);
        let dynamic_bv = bv::bv_dynamic(&[true, true, true]);
        let report =
            verify_dynamic_functional(&static_bv, &dynamic_bv, &Configuration::default()).unwrap();
        assert_eq!(report.equivalence, Equivalence::NotEquivalent);
    }

    #[test]
    fn fixed_input_check_on_bv() {
        let hidden = bv::random_hidden_string(8, 3);
        let static_bv = bv::bv_static(&hidden, true);
        let dynamic_bv = bv::bv_dynamic(&hidden);
        let report = verify_fixed_input(
            &static_bv,
            &dynamic_bv,
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(report.equivalence, Equivalence::Equivalent);
        assert!(report.total_variation_distance < 1e-9);
        assert_eq!(report.reference_distribution.len(), 1);
    }

    #[test]
    fn fixed_input_check_on_inexact_qpe() {
        // θ = 3/16 is not representable with 3 bits: both realizations must
        // produce the same non-trivial distribution.
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let static_qpe = qpe::qpe_static(phi, 3, true);
        let iqpe = qpe::iqpe_dynamic(phi, 3);
        let report = verify_fixed_input(
            &static_qpe,
            &iqpe,
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(report.equivalence, Equivalence::Equivalent);
        assert!(report.dynamic_distribution.len() > 2);
    }

    #[test]
    fn fixed_input_check_detects_differences() {
        let static_bv = bv::bv_static(&[true, true, false], true);
        let dynamic_bv = bv::bv_dynamic(&[true, false, false]);
        let report = verify_fixed_input(
            &static_bv,
            &dynamic_bv,
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(report.equivalence, Equivalence::NotEquivalent);
        assert!(report.total_variation_distance > 0.9);
    }

    #[test]
    fn qft_fixed_input_matches_despite_dense_distribution() {
        let n = 4;
        let static_qft = qft::qft_static(n, None, true);
        let dynamic_qft = qft::qft_dynamic(n);
        let report = verify_fixed_input(
            &static_qft,
            &dynamic_qft,
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .unwrap();
        assert_eq!(report.equivalence, Equivalence::Equivalent);
        assert_eq!(report.dynamic_distribution.len(), 1 << n);
    }

    #[test]
    fn timings_are_recorded() {
        let hidden = bv::random_hidden_string(5, 9);
        let report = verify_dynamic_functional(
            &bv::bv_static(&hidden, true),
            &bv::bv_dynamic(&hidden),
            &Configuration::default(),
        )
        .unwrap();
        assert!(report.transformation_time.as_nanos() > 0);
        assert!(report.verification_time.as_nanos() > 0);
    }
}
