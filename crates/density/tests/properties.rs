//! Property-based and cross-validation tests for the density-matrix layer.
//!
//! The density-matrix simulators are the workspace's independent reference
//! implementation: here they are checked against the decision-diagram
//! state-vector simulator (for unitary circuits) and against the paper's
//! extraction scheme (for dynamic circuits).

use algorithms::{qpe, random};
use circuit::QuantumCircuit;
use density::{DensityMatrix, DensityMatrixSimulator, EnsembleSimulator, NoiseModel};
use proptest::prelude::*;
use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};

/// Builds the density matrix |ψ⟩⟨ψ| of the state-vector simulation of a
/// unitary circuit.
fn pure_reference(circuit: &QuantumCircuit) -> DensityMatrix {
    let mut sim = StateVectorSimulator::new(circuit.num_qubits());
    sim.run(&circuit.without_measurements())
        .expect("reference circuit is unitary");
    DensityMatrix::from_amplitudes(&sim.amplitudes()).expect("small register")
}

#[test]
fn density_simulation_matches_statevector_on_ghz() {
    let qc = algorithms::ghz::ghz(4, false);
    let mut sim = DensityMatrixSimulator::new(4, NoiseModel::noiseless()).unwrap();
    sim.run(&qc).unwrap();
    let reference = pure_reference(&qc);
    assert!(sim.state().approx_eq(&reference, 1e-10));
}

#[test]
fn ensemble_matches_extraction_on_iqpe() {
    // The paper's running example for several precisions.
    for precision in 1..=4 {
        let phi = 3.0 * std::f64::consts::PI / 8.0;
        let iqpe = qpe::iqpe_dynamic(phi, precision);
        let mut ensemble = EnsembleSimulator::new(&iqpe).unwrap();
        ensemble.run(&iqpe).unwrap();
        let extracted = extract_distribution(&iqpe, &ExtractionConfig::default()).unwrap();
        assert!(
            ensemble
                .outcome_distribution()
                .approx_eq(&extracted.distribution, 1e-9),
            "precision {precision}: ensemble and extraction disagree"
        );
    }
}

#[test]
fn ensemble_matches_extraction_on_random_dynamic_circuits() {
    for seed in 0..8u64 {
        let qc = random::random_dynamic_circuit(3, 3, 20, seed);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        let extracted = extract_distribution(&qc, &ExtractionConfig::default()).unwrap();
        assert!(
            ensemble
                .outcome_distribution()
                .approx_eq(&extracted.distribution, 1e-9),
            "seed {seed}: ensemble and extraction disagree"
        );
    }
}

#[test]
fn ensemble_mixed_state_matches_single_density_matrix_for_unconditioned_circuits() {
    // Without classically-controlled operations, averaging the ensemble over
    // the records must give exactly the single-density-matrix simulation.
    for seed in 0..4u64 {
        let mut qc = QuantumCircuit::new(3, 2);
        qc.append(&algorithms::random::random_unitary_circuit(3, 12, seed));
        qc.measure(0, 0);
        qc.h(1);
        qc.measure(1, 1);
        qc.reset(0);
        qc.h(0);

        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        let mut single = DensityMatrixSimulator::new(3, NoiseModel::noiseless()).unwrap();
        single.run(&qc).unwrap();
        assert!(
            ensemble.mixed_state().approx_eq(single.state(), 1e-9),
            "seed {seed}: ensemble average and density matrix disagree"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unitary evolution on a density matrix agrees with the state-vector
    /// simulator for random unitary circuits.
    #[test]
    fn density_matches_statevector_on_random_unitary_circuits(
        seed in 0u64..5000,
        len in 1usize..24,
        n_qubits in 1usize..5,
    ) {
        let qc = random::random_unitary_circuit(n_qubits, len, seed);
        let mut sim = DensityMatrixSimulator::new(n_qubits, NoiseModel::noiseless()).unwrap();
        sim.run(&qc).unwrap();
        let reference = pure_reference(&qc);
        prop_assert!(sim.state().approx_eq(&reference, 1e-9));
        prop_assert!((sim.state().purity() - 1.0).abs() < 1e-9);
    }

    /// The ensemble's record distribution always sums to one and matches the
    /// extraction scheme on random dynamic circuits.
    #[test]
    fn ensemble_distribution_is_normalised_and_matches_extraction(
        seed in 0u64..5000,
        len in 4usize..28,
    ) {
        let qc = random::random_dynamic_circuit(3, 2, len, seed);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        let distribution = ensemble.outcome_distribution();
        prop_assert!((distribution.total() - 1.0).abs() < 1e-9);
        let extracted = extract_distribution(&qc, &ExtractionConfig::default()).unwrap();
        prop_assert!(distribution.approx_eq(&extracted.distribution, 1e-9));
    }

    /// Projective measurement branches always sum back to the pre-measurement
    /// probabilities and traces stay within [0, 1].
    #[test]
    fn projection_probabilities_are_consistent(
        seed in 0u64..5000,
        n_qubits in 1usize..4,
        qubit_choice in 0usize..4,
    ) {
        let qubit = qubit_choice % n_qubits;
        let qc = random::random_unitary_circuit(n_qubits, 10, seed);
        let mut sim = DensityMatrixSimulator::new(n_qubits, NoiseModel::noiseless()).unwrap();
        sim.run(&qc).unwrap();
        let rho = sim.state().clone();
        let (p0, p1) = rho.probabilities(qubit);
        prop_assert!((p0 + p1 - 1.0).abs() < 1e-9);
        let mut branch0 = rho.clone();
        let q0 = branch0.project(qubit, false, false);
        let mut branch1 = rho.clone();
        let q1 = branch1.project(qubit, true, false);
        prop_assert!((q0 - p0).abs() < 1e-9);
        prop_assert!((q1 - p1).abs() < 1e-9);
        prop_assert!((branch0.trace() + branch1.trace() - 1.0).abs() < 1e-9);
    }

    /// Noise never increases purity beyond 1 and never breaks the unit trace.
    #[test]
    fn noisy_simulation_is_physical(
        seed in 0u64..5000,
        p1 in 0.0f64..0.2,
        p2 in 0.0f64..0.2,
    ) {
        let qc = random::random_unitary_circuit(3, 15, seed);
        let mut sim = DensityMatrixSimulator::new(3, NoiseModel::depolarizing(p1, p2)).unwrap();
        sim.run(&qc).unwrap();
        prop_assert!((sim.state().trace() - 1.0).abs() < 1e-8);
        prop_assert!(sim.state().purity() <= 1.0 + 1e-8);
        prop_assert!(sim.state().is_hermitian(1e-8));
    }
}
