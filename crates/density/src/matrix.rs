//! A dense density matrix over a small qubit register.

use crate::error::DensityError;
use dd::{Complex, Control, GateMatrix, TOLERANCE};

/// Hard limit on the register size of the dense representation.
///
/// A 12-qubit density matrix already occupies `4^12 · 16 B = 256 MiB`;
/// anything larger belongs to the decision-diagram machinery.
pub const MAX_DENSE_QUBITS: usize = 12;

/// A dense `2^n × 2^n` density operator.
///
/// The basis-state convention matches the rest of the workspace: basis index
/// `i` assigns qubit `q` the value `(i >> q) & 1` (qubit 0 is the least
/// significant bit).
///
/// The matrix is stored row-major. The type deliberately does not enforce
/// positivity or unit trace on every operation — projections produce
/// *unnormalised* states whose trace is the branch probability, which is
/// exactly what the ensemble simulator needs.
///
/// # Examples
///
/// ```
/// use density::DensityMatrix;
/// use dd::gates;
///
/// let mut rho = DensityMatrix::new(2).unwrap();
/// rho.apply_gate(&gates::h(), 0, &[]);
/// rho.apply_gate(&gates::x(), 1, &[dd::Control::pos(0)]);
/// let (p0, p1) = rho.probabilities(1);
/// assert!((p0 - 0.5).abs() < 1e-12 && (p1 - 0.5).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    data: Vec<Complex>,
}

impl DensityMatrix {
    /// The pure state |0…0⟩⟨0…0| on `n_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::TooManyQubits`] when `n_qubits` exceeds
    /// [`MAX_DENSE_QUBITS`].
    pub fn new(n_qubits: usize) -> Result<Self, DensityError> {
        if n_qubits > MAX_DENSE_QUBITS {
            return Err(DensityError::TooManyQubits {
                n_qubits,
                limit: MAX_DENSE_QUBITS,
            });
        }
        let dim = 1usize << n_qubits;
        let mut data = vec![Complex::ZERO; dim * dim];
        data[0] = Complex::ONE;
        Ok(DensityMatrix {
            n_qubits,
            dim,
            data,
        })
    }

    /// The pure computational basis state described by `bits`
    /// (`bits[q]` is the value of qubit `q`).
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::TooManyQubits`] for oversized registers.
    pub fn from_basis_bits(bits: &[bool]) -> Result<Self, DensityError> {
        let mut rho = DensityMatrix::new(bits.len())?;
        let index = bits
            .iter()
            .enumerate()
            .fold(0usize, |acc, (q, &b)| acc | (usize::from(b) << q));
        rho.data[0] = Complex::ZERO;
        rho.data[index * rho.dim + index] = Complex::ONE;
        Ok(rho)
    }

    /// The pure state |ψ⟩⟨ψ| built from a dense amplitude vector.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::InvalidAmplitudes`] when the length is not a
    /// power of two, or [`DensityError::TooManyQubits`] when the register
    /// would be too large.
    pub fn from_amplitudes(amplitudes: &[Complex]) -> Result<Self, DensityError> {
        let len = amplitudes.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(DensityError::InvalidAmplitudes {
                len,
                expected: len.next_power_of_two().max(1),
            });
        }
        let n_qubits = len.trailing_zeros() as usize;
        if n_qubits > MAX_DENSE_QUBITS {
            return Err(DensityError::TooManyQubits {
                n_qubits,
                limit: MAX_DENSE_QUBITS,
            });
        }
        let dim = len;
        let mut data = vec![Complex::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                data[i * dim + j] = amplitudes[i] * amplitudes[j].conj();
            }
        }
        Ok(DensityMatrix {
            n_qubits,
            dim,
            data,
        })
    }

    /// Number of qubits of the register.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Dimension `2^n` of the Hilbert space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Matrix element `⟨i|ρ|j⟩`.
    pub fn element(&self, i: usize, j: usize) -> Complex {
        self.data[i * self.dim + j]
    }

    /// Mutable access to a matrix element (used by the test suites to
    /// construct counter-examples).
    pub fn element_mut(&mut self, i: usize, j: usize) -> &mut Complex {
        &mut self.data[i * self.dim + j]
    }

    /// The trace of the matrix (1 for a normalised state; the branch
    /// probability for projected, unnormalised states).
    pub fn trace(&self) -> f64 {
        (0..self.dim).map(|i| self.element(i, i).re).sum()
    }

    /// The purity `Tr(ρ²)`, which is 1 exactly for pure states and `1/2^n`
    /// for the maximally mixed state.
    pub fn purity(&self) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.dim {
            for j in 0..self.dim {
                // Tr(ρ²) = Σ_{ij} ρ_ij ρ_ji = Σ_{ij} |ρ_ij|² for Hermitian ρ.
                sum += (self.element(i, j) * self.element(j, i)).re;
            }
        }
        sum
    }

    /// Returns `true` when the matrix is Hermitian within `tolerance`.
    pub fn is_hermitian(&self, tolerance: f64) -> bool {
        for i in 0..self.dim {
            for j in i..self.dim {
                let a = self.element(i, j);
                let b = self.element(j, i).conj();
                if (a.re - b.re).abs() > tolerance || (a.im - b.im).abs() > tolerance {
                    return false;
                }
            }
        }
        true
    }

    /// The diagonal of the matrix, i.e. the probabilities of the
    /// computational basis states.
    pub fn diagonal_probabilities(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.element(i, i).re).collect()
    }

    /// Rescales the matrix so its trace becomes one (no-op for zero trace).
    pub fn normalize(&mut self) {
        let trace = self.trace();
        if trace > TOLERANCE {
            let scale = 1.0 / trace;
            for value in &mut self.data {
                *value = *value * scale;
            }
        }
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), DensityError> {
        if qubit >= self.n_qubits {
            return Err(DensityError::QubitOutOfRange {
                qubit,
                n_qubits: self.n_qubits,
            });
        }
        Ok(())
    }

    fn controls_satisfied(index: usize, controls: &[Control]) -> bool {
        controls
            .iter()
            .all(|c| ((index >> c.qubit) & 1 == 1) == c.positive)
    }

    /// Applies the (multi-controlled) single-qubit unitary `u` on `target`:
    /// `ρ → CU ρ CU†`.
    ///
    /// # Panics
    ///
    /// Panics when the target or a control qubit is out of range; the circuit
    /// simulators validate indices before calling this.
    pub fn apply_gate(&mut self, u: &GateMatrix, target: usize, controls: &[Control]) {
        self.check_qubit(target).expect("target in range");
        for c in controls {
            self.check_qubit(c.qubit).expect("control in range");
        }
        self.left_multiply(u, target, controls);
        self.right_multiply_adjoint(u, target, controls);
    }

    /// Left-multiplies by the controlled extension of the (not necessarily
    /// unitary) 2×2 operator `m`: `ρ → M ρ`.
    fn left_multiply(&mut self, m: &GateMatrix, target: usize, controls: &[Control]) {
        let bit = 1usize << target;
        for row0 in 0..self.dim {
            if row0 & bit != 0 || !Self::controls_satisfied(row0, controls) {
                continue;
            }
            let row1 = row0 | bit;
            for col in 0..self.dim {
                let a = self.data[row0 * self.dim + col];
                let b = self.data[row1 * self.dim + col];
                self.data[row0 * self.dim + col] = m[0][0] * a + m[0][1] * b;
                self.data[row1 * self.dim + col] = m[1][0] * a + m[1][1] * b;
            }
        }
    }

    /// Right-multiplies by the adjoint of the controlled extension of `m`:
    /// `ρ → ρ M†`.
    fn right_multiply_adjoint(&mut self, m: &GateMatrix, target: usize, controls: &[Control]) {
        let bit = 1usize << target;
        for col0 in 0..self.dim {
            if col0 & bit != 0 || !Self::controls_satisfied(col0, controls) {
                continue;
            }
            let col1 = col0 | bit;
            for row in 0..self.dim {
                let a = self.data[row * self.dim + col0];
                let b = self.data[row * self.dim + col1];
                self.data[row * self.dim + col0] = a * m[0][0].conj() + b * m[0][1].conj();
                self.data[row * self.dim + col1] = a * m[1][0].conj() + b * m[1][1].conj();
            }
        }
    }

    /// Applies a single-qubit Kraus channel `ρ → Σ_k K_k ρ K_k†` on `target`.
    ///
    /// # Panics
    ///
    /// Panics when the target qubit is out of range.
    pub fn apply_kraus(&mut self, kraus: &[GateMatrix], target: usize) {
        self.check_qubit(target).expect("target in range");
        let mut accumulated = vec![Complex::ZERO; self.data.len()];
        for k in kraus {
            let mut term = self.clone();
            term.left_multiply(k, target, &[]);
            term.right_multiply_adjoint(k, target, &[]);
            for (acc, value) in accumulated.iter_mut().zip(term.data.iter()) {
                *acc += *value;
            }
        }
        self.data = accumulated;
    }

    /// Probabilities of measuring `qubit` as 0 and 1 (not renormalised, i.e.
    /// they sum to the trace of the matrix).
    ///
    /// # Panics
    ///
    /// Panics when the qubit is out of range.
    pub fn probabilities(&self, qubit: usize) -> (f64, f64) {
        self.check_qubit(qubit).expect("qubit in range");
        let bit = 1usize << qubit;
        let mut p0 = 0.0;
        let mut p1 = 0.0;
        for i in 0..self.dim {
            let p = self.element(i, i).re;
            if i & bit == 0 {
                p0 += p;
            } else {
                p1 += p;
            }
        }
        (p0, p1)
    }

    /// Projects `qubit` onto `outcome` and returns the outcome probability.
    ///
    /// When `renormalize` is `false` the result is the *unnormalised*
    /// post-measurement state `P ρ P` whose trace equals the returned
    /// probability (relative to the trace before the projection).
    ///
    /// # Panics
    ///
    /// Panics when the qubit is out of range.
    pub fn project(&mut self, qubit: usize, outcome: bool, renormalize: bool) -> f64 {
        let (p0, p1) = self.probabilities(qubit);
        let probability = if outcome { p1 } else { p0 };
        let bit = 1usize << qubit;
        let wanted = usize::from(outcome) << qubit;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if i & bit != wanted || j & bit != wanted {
                    self.data[i * self.dim + j] = Complex::ZERO;
                }
            }
        }
        if renormalize && probability > TOLERANCE {
            let scale = 1.0 / probability;
            for value in &mut self.data {
                *value = *value * scale;
            }
        }
        probability
    }

    /// Applies the reset channel `ρ → P₀ ρ P₀ + X P₁ ρ P₁ X` on `qubit`
    /// (measure, flip on outcome 1, discard the outcome).
    ///
    /// # Panics
    ///
    /// Panics when the qubit is out of range.
    pub fn reset(&mut self, qubit: usize) {
        // Kraus operators |0⟩⟨0| and |0⟩⟨1|.
        let k0: GateMatrix = [
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::ZERO],
        ];
        let k1: GateMatrix = [
            [Complex::ZERO, Complex::ONE],
            [Complex::ZERO, Complex::ZERO],
        ];
        self.apply_kraus(&[k0, k1], qubit);
    }

    /// Applies a non-selective measurement (complete dephasing) of `qubit`:
    /// all coherences between the |0⟩ and |1⟩ subspaces of the qubit are
    /// erased, the populations are kept.
    ///
    /// # Panics
    ///
    /// Panics when the qubit is out of range.
    pub fn dephase(&mut self, qubit: usize) {
        self.check_qubit(qubit).expect("qubit in range");
        let bit = 1usize << qubit;
        for i in 0..self.dim {
            for j in 0..self.dim {
                if (i & bit) != (j & bit) {
                    self.data[i * self.dim + j] = Complex::ZERO;
                }
            }
        }
    }

    /// The reduced density matrix obtained by tracing out the qubits in
    /// `traced` (duplicates are ignored).
    ///
    /// The remaining qubits keep their relative order and are re-indexed from
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics when a traced qubit is out of range.
    pub fn partial_trace(&self, traced: &[usize]) -> DensityMatrix {
        for &q in traced {
            self.check_qubit(q).expect("traced qubit in range");
        }
        let kept: Vec<usize> = (0..self.n_qubits).filter(|q| !traced.contains(q)).collect();
        let kept_n = kept.len();
        let kept_dim = 1usize << kept_n;
        let traced_qubits: Vec<usize> = (0..self.n_qubits).filter(|q| traced.contains(q)).collect();
        let traced_dim = 1usize << traced_qubits.len();

        let expand = |kept_index: usize, traced_index: usize| -> usize {
            let mut full = 0usize;
            for (pos, &q) in kept.iter().enumerate() {
                full |= ((kept_index >> pos) & 1) << q;
            }
            for (pos, &q) in traced_qubits.iter().enumerate() {
                full |= ((traced_index >> pos) & 1) << q;
            }
            full
        };

        let mut reduced = vec![Complex::ZERO; kept_dim * kept_dim];
        for i in 0..kept_dim {
            for j in 0..kept_dim {
                let mut sum = Complex::ZERO;
                for t in 0..traced_dim {
                    sum += self.element(expand(i, t), expand(j, t));
                }
                reduced[i * kept_dim + j] = sum;
            }
        }
        DensityMatrix {
            n_qubits: kept_n,
            dim: kept_dim,
            data: reduced,
        }
    }

    /// The fidelity `⟨ψ|ρ|ψ⟩` with a pure state given by dense amplitudes.
    ///
    /// # Panics
    ///
    /// Panics when the amplitude vector length differs from the matrix
    /// dimension.
    pub fn fidelity_with_pure(&self, amplitudes: &[Complex]) -> f64 {
        assert_eq!(amplitudes.len(), self.dim, "amplitude length mismatch");
        let mut fidelity = Complex::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                fidelity += amplitudes[i].conj() * self.element(i, j) * amplitudes[j];
            }
        }
        fidelity.re
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics when the dimensions differ.
    pub fn max_difference(&self, other: &DensityMatrix) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Returns `true` when the two matrices agree element-wise within
    /// `tolerance`.
    pub fn approx_eq(&self, other: &DensityMatrix, tolerance: f64) -> bool {
        self.dim == other.dim && self.max_difference(other) <= tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd::gates;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn new_is_ground_state() {
        let rho = DensityMatrix::new(2).unwrap();
        assert_eq!(rho.num_qubits(), 2);
        assert_eq!(rho.dim(), 4);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.element(0, 0).re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_register_is_rejected() {
        assert!(matches!(
            DensityMatrix::new(MAX_DENSE_QUBITS + 1),
            Err(DensityError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn basis_bits_sets_the_right_diagonal_entry() {
        // Qubit 0 = 1, qubit 1 = 0, qubit 2 = 1 → index 0b101 = 5.
        let rho = DensityMatrix::from_basis_bits(&[true, false, true]).unwrap();
        assert!((rho.element(5, 5).re - 1.0).abs() < 1e-12);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_matches_outer_product() {
        let amps = [c(0.6, 0.0), c(0.0, 0.8)];
        let rho = DensityMatrix::from_amplitudes(&amps).unwrap();
        assert!((rho.element(0, 0).re - 0.36).abs() < 1e-12);
        assert!((rho.element(1, 1).re - 0.64).abs() < 1e-12);
        // ⟨0|ρ|1⟩ = a0 · conj(a1) = 0.6 · (0 − 0.8i) = −0.48i.
        assert!((rho.element(0, 1).im + 0.48).abs() < 1e-12);
        assert!(rho.is_hermitian(1e-12));
    }

    #[test]
    fn from_amplitudes_rejects_non_power_of_two() {
        let amps = vec![Complex::ONE; 3];
        assert!(matches!(
            DensityMatrix::from_amplitudes(&amps),
            Err(DensityError::InvalidAmplitudes { .. })
        ));
    }

    #[test]
    fn hadamard_creates_uniform_coherent_state() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        for i in 0..2 {
            for j in 0..2 {
                assert!((rho.element(i, j).re - 0.5).abs() < 1e-12);
            }
        }
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities_and_purity() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        rho.apply_gate(&gates::x(), 1, &[Control::pos(0)]);
        let (p0, p1) = rho.probabilities(0);
        assert!((p0 - 0.5).abs() < 1e-12 && (p1 - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        // The reduced state of either qubit is maximally mixed.
        let reduced = rho.partial_trace(&[1]);
        assert_eq!(reduced.num_qubits(), 1);
        assert!((reduced.purity() - 0.5).abs() < 1e-12);
        assert!((reduced.element(0, 0).re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn negative_control_triggers_on_zero() {
        let mut rho = DensityMatrix::new(2).unwrap();
        // Control qubit 0 is |0⟩, so a negative control applies X to qubit 1.
        rho.apply_gate(&gates::x(), 1, &[Control::neg(0)]);
        let (p0, p1) = rho.probabilities(1);
        assert!(p0.abs() < 1e-12 && (p1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_returns_branch_probability() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::ry(std::f64::consts::FRAC_PI_3), 0, &[]);
        let (p0, p1) = rho.probabilities(0);
        let mut branch0 = rho.clone();
        let q0 = branch0.project(0, false, false);
        let mut branch1 = rho.clone();
        let q1 = branch1.project(0, true, false);
        assert!((q0 - p0).abs() < 1e-12);
        assert!((q1 - p1).abs() < 1e-12);
        assert!((branch0.trace() - p0).abs() < 1e-12);
        assert!((branch1.trace() - p1).abs() < 1e-12);
        // Renormalised projection has unit trace.
        let mut renorm = rho.clone();
        renorm.project(0, true, true);
        assert!((renorm.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_maps_any_state_to_ground() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        rho.apply_gate(&gates::t(), 0, &[]);
        rho.reset(0);
        assert!((rho.element(0, 0).re - 1.0).abs() < 1e-12);
        assert!(rho.element(1, 1).abs() < 1e-12);
        assert!(rho.element(0, 1).abs() < 1e-12);
    }

    #[test]
    fn reset_only_touches_the_target_qubit() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(&gates::x(), 1, &[]);
        rho.apply_gate(&gates::h(), 0, &[]);
        rho.reset(0);
        let (p0, p1) = rho.probabilities(1);
        assert!(p0.abs() < 1e-12 && (p1 - 1.0).abs() < 1e-12);
        let (q0, q1) = rho.probabilities(0);
        assert!((q0 - 1.0).abs() < 1e-12 && q1.abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherences_keeps_populations() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        rho.dephase(0);
        assert!((rho.element(0, 0).re - 0.5).abs() < 1e-12);
        assert!((rho.element(1, 1).re - 0.5).abs() < 1e-12);
        assert!(rho.element(0, 1).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fidelity_with_pure_state() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        let plus = [c(std::f64::consts::FRAC_1_SQRT_2, 0.0); 2];
        assert!((rho.fidelity_with_pure(&plus) - 1.0).abs() < 1e-12);
        let zero = [Complex::ONE, Complex::ZERO];
        assert!((rho.fidelity_with_pure(&zero) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_of_product_state_is_exact() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(&gates::x(), 0, &[]);
        rho.apply_gate(&gates::h(), 1, &[]);
        let q0 = rho.partial_trace(&[1]);
        assert!((q0.element(1, 1).re - 1.0).abs() < 1e-12);
        let q1 = rho.partial_trace(&[0]);
        assert!((q1.element(0, 1).re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_restores_unit_trace() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        rho.project(0, true, false);
        assert!((rho.trace() - 0.5).abs() < 1e-12);
        rho.normalize();
        assert!((rho.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::new(3).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        rho.apply_gate(&gates::x(), 2, &[Control::pos(0)]);
        rho.apply_gate(&gates::phase(0.7), 1, &[Control::pos(2)]);
        rho.apply_gate(&gates::u3(0.3, 1.1, -0.4), 1, &[]);
        assert!((rho.trace() - 1.0).abs() < 1e-10);
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        assert!(rho.is_hermitian(1e-10));
    }

    #[test]
    fn kraus_identity_channel_is_a_no_op() {
        let mut rho = DensityMatrix::new(2).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        rho.apply_gate(&gates::x(), 1, &[Control::pos(0)]);
        let before = rho.clone();
        rho.apply_kraus(&[gates::id()], 0);
        assert!(rho.approx_eq(&before, 1e-12));
    }

    #[test]
    fn max_difference_detects_changes() {
        let a = DensityMatrix::new(1).unwrap();
        let mut b = DensityMatrix::new(1).unwrap();
        b.apply_gate(&gates::x(), 0, &[]);
        assert!(a.max_difference(&b) > 0.9);
        assert!(!a.approx_eq(&b, 1e-6));
    }
}
