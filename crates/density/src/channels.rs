//! Standard single-qubit Kraus channels.
//!
//! These channels power the optional noise model of the
//! [`DensityMatrixSimulator`](crate::DensityMatrixSimulator) — an extension in
//! the spirit of the decoherence-aware decision-diagram simulation the paper
//! cites as related work — and provide the Kraus-operator building blocks for
//! the reset and dephasing operations of [`DensityMatrix`](crate::DensityMatrix).

use crate::matrix::DensityMatrix;
use dd::{gates, Complex, GateMatrix};
use std::fmt;

/// A single-qubit quantum channel in Kraus representation.
///
/// # Examples
///
/// ```
/// use density::{DensityMatrix, KrausChannel};
/// use dd::gates;
///
/// let mut rho = DensityMatrix::new(1).unwrap();
/// rho.apply_gate(&gates::h(), 0, &[]);
/// // Complete phase damping turns |+⟩⟨+| into the maximally mixed state.
/// KrausChannel::phase_damping(1.0).apply(&mut rho, 0);
/// assert!((rho.purity() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KrausChannel {
    name: String,
    operators: Vec<GateMatrix>,
}

impl KrausChannel {
    /// Creates a channel from explicit Kraus operators.
    pub fn new(name: impl Into<String>, operators: Vec<GateMatrix>) -> Self {
        KrausChannel {
            name: name.into(),
            operators,
        }
    }

    /// Human-readable channel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The Kraus operators of the channel.
    pub fn operators(&self) -> &[GateMatrix] {
        &self.operators
    }

    /// The identity channel (no noise).
    pub fn identity() -> Self {
        KrausChannel::new("identity", vec![gates::id()])
    }

    /// Bit-flip channel: applies X with probability `p`.
    pub fn bit_flip(p: f64) -> Self {
        KrausChannel::new("bit_flip", flip_operators(p, gates::x()))
    }

    /// Phase-flip channel: applies Z with probability `p`.
    pub fn phase_flip(p: f64) -> Self {
        KrausChannel::new("phase_flip", flip_operators(p, gates::z()))
    }

    /// Bit-and-phase-flip channel: applies Y with probability `p`.
    pub fn bit_phase_flip(p: f64) -> Self {
        KrausChannel::new("bit_phase_flip", flip_operators(p, gates::y()))
    }

    /// Single-qubit depolarising channel with error probability `p`
    /// (X, Y and Z each occur with probability `p/3`).
    pub fn depolarizing(p: f64) -> Self {
        let keep = (1.0 - p).max(0.0).sqrt();
        let err = (p / 3.0).max(0.0).sqrt();
        let operators = vec![
            scale(gates::id(), keep),
            scale(gates::x(), err),
            scale(gates::y(), err),
            scale(gates::z(), err),
        ];
        KrausChannel::new("depolarizing", operators)
    }

    /// Amplitude-damping channel with decay probability `gamma`
    /// (spontaneous emission |1⟩ → |0⟩).
    pub fn amplitude_damping(gamma: f64) -> Self {
        let gamma = gamma.clamp(0.0, 1.0);
        let k0: GateMatrix = [
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::real((1.0 - gamma).sqrt())],
        ];
        let k1: GateMatrix = [
            [Complex::ZERO, Complex::real(gamma.sqrt())],
            [Complex::ZERO, Complex::ZERO],
        ];
        KrausChannel::new("amplitude_damping", vec![k0, k1])
    }

    /// Phase-damping channel with damping parameter `lambda`.
    pub fn phase_damping(lambda: f64) -> Self {
        let lambda = lambda.clamp(0.0, 1.0);
        let k0: GateMatrix = [
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::real((1.0 - lambda).sqrt())],
        ];
        let k1: GateMatrix = [
            [Complex::ZERO, Complex::ZERO],
            [Complex::ZERO, Complex::real(lambda.sqrt())],
        ];
        KrausChannel::new("phase_damping", vec![k0, k1])
    }

    /// The reset channel: measures the qubit and flips it to |0⟩ on
    /// outcome 1, discarding the outcome.
    pub fn reset() -> Self {
        let k0: GateMatrix = [
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::ZERO],
        ];
        let k1: GateMatrix = [
            [Complex::ZERO, Complex::ONE],
            [Complex::ZERO, Complex::ZERO],
        ];
        KrausChannel::new("reset", vec![k0, k1])
    }

    /// Complete dephasing (a non-selective computational-basis measurement).
    pub fn dephasing() -> Self {
        let p0: GateMatrix = [
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::ZERO],
        ];
        let p1: GateMatrix = [
            [Complex::ZERO, Complex::ZERO],
            [Complex::ZERO, Complex::ONE],
        ];
        KrausChannel::new("dephasing", vec![p0, p1])
    }

    /// Checks the completeness relation `Σ_k K_k† K_k = I` within `tolerance`.
    pub fn is_trace_preserving(&self, tolerance: f64) -> bool {
        let mut sum = [[Complex::ZERO; 2]; 2];
        for k in &self.operators {
            let product = gates::matmul(&gates::adjoint(k), k);
            for (row, product_row) in sum.iter_mut().zip(product.iter()) {
                for (entry, &value) in row.iter_mut().zip(product_row.iter()) {
                    *entry += value;
                }
            }
        }
        (sum[0][0] - Complex::ONE).abs() <= tolerance
            && (sum[1][1] - Complex::ONE).abs() <= tolerance
            && sum[0][1].abs() <= tolerance
            && sum[1][0].abs() <= tolerance
    }

    /// Applies the channel to `target` of a density matrix.
    ///
    /// # Panics
    ///
    /// Panics when the target qubit is out of range.
    pub fn apply(&self, rho: &mut DensityMatrix, target: usize) {
        rho.apply_kraus(&self.operators, target);
    }
}

impl fmt::Display for KrausChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} Kraus operators)",
            self.name,
            self.operators.len()
        )
    }
}

fn flip_operators(p: f64, flip: GateMatrix) -> Vec<GateMatrix> {
    let p = p.clamp(0.0, 1.0);
    vec![scale(gates::id(), (1.0 - p).sqrt()), scale(flip, p.sqrt())]
}

fn scale(m: GateMatrix, factor: f64) -> GateMatrix {
    [
        [m[0][0] * factor, m[0][1] * factor],
        [m[1][0] * factor, m[1][1] * factor],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd::gates;

    #[test]
    fn all_standard_channels_are_trace_preserving() {
        let channels = [
            KrausChannel::identity(),
            KrausChannel::bit_flip(0.1),
            KrausChannel::phase_flip(0.25),
            KrausChannel::bit_phase_flip(0.4),
            KrausChannel::depolarizing(0.3),
            KrausChannel::amplitude_damping(0.2),
            KrausChannel::phase_damping(0.7),
            KrausChannel::reset(),
            KrausChannel::dephasing(),
        ];
        for channel in &channels {
            assert!(
                channel.is_trace_preserving(1e-10),
                "{channel} is not trace preserving"
            );
        }
    }

    #[test]
    fn bit_flip_mixes_populations() {
        let mut rho = DensityMatrix::new(1).unwrap();
        KrausChannel::bit_flip(0.25).apply(&mut rho, 0);
        assert!((rho.element(0, 0).re - 0.75).abs() < 1e-12);
        assert!((rho.element(1, 1).re - 0.25).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_limit_is_maximally_mixed() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::h(), 0, &[]);
        KrausChannel::depolarizing(0.75).apply(&mut rho, 0);
        // p = 3/4 depolarising maps every state to I/2.
        assert!((rho.element(0, 0).re - 0.5).abs() < 1e-10);
        assert!((rho.element(1, 1).re - 0.5).abs() < 1e-10);
        assert!(rho.element(0, 1).abs() < 1e-10);
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::x(), 0, &[]);
        KrausChannel::amplitude_damping(0.3).apply(&mut rho, 0);
        assert!((rho.element(1, 1).re - 0.7).abs() < 1e-12);
        assert!((rho.element(0, 0).re - 0.3).abs() < 1e-12);
        // Full damping returns the ground state.
        KrausChannel::amplitude_damping(1.0).apply(&mut rho, 0);
        assert!((rho.element(0, 0).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_channel_matches_density_matrix_reset() {
        let mut via_channel = DensityMatrix::new(2).unwrap();
        via_channel.apply_gate(&gates::h(), 0, &[]);
        via_channel.apply_gate(&gates::x(), 1, &[dd::Control::pos(0)]);
        let mut via_method = via_channel.clone();
        KrausChannel::reset().apply(&mut via_channel, 0);
        via_method.reset(0);
        assert!(via_channel.approx_eq(&via_method, 1e-12));
    }

    #[test]
    fn dephasing_channel_matches_dephase_method() {
        let mut via_channel = DensityMatrix::new(1).unwrap();
        via_channel.apply_gate(&gates::h(), 0, &[]);
        let mut via_method = via_channel.clone();
        KrausChannel::dephasing().apply(&mut via_channel, 0);
        via_method.dephase(0);
        assert!(via_channel.approx_eq(&via_method, 1e-12));
    }

    #[test]
    fn zero_noise_channels_are_identities() {
        let mut rho = DensityMatrix::new(1).unwrap();
        rho.apply_gate(&gates::u3(0.4, 0.2, 1.3), 0, &[]);
        let before = rho.clone();
        KrausChannel::bit_flip(0.0).apply(&mut rho, 0);
        KrausChannel::depolarizing(0.0).apply(&mut rho, 0);
        KrausChannel::amplitude_damping(0.0).apply(&mut rho, 0);
        KrausChannel::phase_damping(0.0).apply(&mut rho, 0);
        assert!(rho.approx_eq(&before, 1e-12));
    }

    #[test]
    fn display_mentions_name_and_operator_count() {
        let channel = KrausChannel::depolarizing(0.1);
        let text = channel.to_string();
        assert!(text.contains("depolarizing"));
        assert!(text.contains('4'));
        assert_eq!(channel.name(), "depolarizing");
        assert_eq!(channel.operators().len(), 4);
    }
}
