//! Ensemble simulation: one unnormalised density matrix per classical record.
//!
//! A single density matrix cannot report the distribution over mid-circuit
//! measurement *records* — exactly the limitation the paper points out for
//! density-matrix simulators. The ensemble simulator fixes this by keeping a
//! separate (unnormalised) density matrix for every classical record that has
//! non-zero probability. Its memory use is exponential in both the number of
//! qubits and the number of measurements, so it only serves as a small-scale
//! reference oracle for the paper's extraction scheme.

use crate::error::DensityError;
use crate::matrix::DensityMatrix;
use circuit::{OpKind, QuantumCircuit};
use dd::Control;
use sim::{gate_matrix, OutcomeDistribution};

/// Options of the ensemble simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleConfig {
    /// Branches whose trace (path probability) falls below this threshold are
    /// dropped.
    pub prune_threshold: f64,
    /// Maximum number of simultaneously tracked branches.
    pub max_branches: usize,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            prune_threshold: 1e-12,
            max_branches: 1 << 16,
        }
    }
}

/// One branch of the ensemble: a classical record and the unnormalised state
/// conditioned on it.
#[derive(Debug, Clone)]
pub struct EnsembleBranch {
    /// Values of the classical bits along this branch.
    pub record: Vec<bool>,
    /// Unnormalised conditional state; its trace is the branch probability.
    pub state: DensityMatrix,
}

impl EnsembleBranch {
    /// The probability of this branch (the trace of its unnormalised state).
    pub fn probability(&self) -> f64 {
        self.state.trace()
    }
}

/// Simulates a dynamic circuit while tracking every classical record.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use density::EnsembleSimulator;
///
/// // Measure both halves of a Bell pair: the records 00 and 11 each occur
/// // with probability 1/2.
/// let mut qc = QuantumCircuit::new(2, 2);
/// qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
/// let mut ensemble = EnsembleSimulator::new(&qc)?;
/// ensemble.run(&qc)?;
/// let distribution = ensemble.outcome_distribution();
/// assert!((distribution.probability(&[false, false]) - 0.5).abs() < 1e-12);
/// assert!((distribution.probability(&[true, true]) - 0.5).abs() < 1e-12);
/// assert!(distribution.probability(&[true, false]) < 1e-12);
/// # Ok::<(), density::DensityError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EnsembleSimulator {
    n_qubits: usize,
    n_bits: usize,
    config: EnsembleConfig,
    branches: Vec<EnsembleBranch>,
}

impl EnsembleSimulator {
    /// Creates a simulator sized for `circuit`, starting from |0…0⟩ with an
    /// all-zero classical record.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::TooManyQubits`] when the circuit register is
    /// too wide for the dense representation.
    pub fn new(circuit: &QuantumCircuit) -> Result<Self, DensityError> {
        Self::with_config(circuit, EnsembleConfig::default())
    }

    /// Creates a simulator with explicit [`EnsembleConfig`] options.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::TooManyQubits`] when the circuit register is
    /// too wide for the dense representation.
    pub fn with_config(
        circuit: &QuantumCircuit,
        config: EnsembleConfig,
    ) -> Result<Self, DensityError> {
        let state = DensityMatrix::new(circuit.num_qubits())?;
        Ok(EnsembleSimulator {
            n_qubits: circuit.num_qubits(),
            n_bits: circuit.num_bits(),
            config,
            branches: vec![EnsembleBranch {
                record: vec![false; circuit.num_bits()],
                state,
            }],
        })
    }

    /// Number of qubits of the simulated register.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of classical bits of the simulated register.
    pub fn num_bits(&self) -> usize {
        self.n_bits
    }

    /// The currently tracked branches.
    pub fn branches(&self) -> &[EnsembleBranch] {
        &self.branches
    }

    /// Runs all operations of `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::QubitOutOfRange`] /
    /// [`DensityError::BitOutOfRange`] for malformed circuits and
    /// [`DensityError::BranchLimitExceeded`] when the number of classical
    /// records exceeds the configured budget.
    pub fn run(&mut self, circuit: &QuantumCircuit) -> Result<(), DensityError> {
        for op in circuit.iter() {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Applies a single operation to every branch.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn apply(&mut self, op: &circuit::Operation) -> Result<(), DensityError> {
        for q in op.qubits() {
            if q >= self.n_qubits {
                return Err(DensityError::QubitOutOfRange {
                    qubit: q,
                    n_qubits: self.n_qubits,
                });
            }
        }
        for b in op.bits() {
            if b >= self.n_bits {
                return Err(DensityError::BitOutOfRange {
                    bit: b,
                    n_bits: self.n_bits,
                });
            }
        }
        match &op.kind {
            OpKind::Barrier => {}
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                let matrix = gate_matrix(*gate);
                let dd_controls: Vec<Control> = controls
                    .iter()
                    .map(|c| Control {
                        qubit: c.qubit,
                        positive: c.positive,
                    })
                    .collect();
                for branch in &mut self.branches {
                    let apply = match op.condition {
                        None => true,
                        Some(cond) => branch.record[cond.bit] == cond.value,
                    };
                    if apply {
                        branch.state.apply_gate(&matrix, *target, &dd_controls);
                    }
                }
            }
            OpKind::Reset { qubit } => {
                for branch in &mut self.branches {
                    branch.state.reset(*qubit);
                }
            }
            OpKind::Measure { qubit, bit } => {
                let mut next = Vec::with_capacity(self.branches.len() * 2);
                for branch in self.branches.drain(..) {
                    for outcome in [false, true] {
                        let mut state = branch.state.clone();
                        let probability = state.project(*qubit, outcome, false);
                        if probability < self.config.prune_threshold {
                            continue;
                        }
                        let mut record = branch.record.clone();
                        record[*bit] = outcome;
                        next.push(EnsembleBranch { record, state });
                    }
                }
                // Merge branches whose records coincide (an earlier
                // measurement of the same classical bit was overwritten).
                next.sort_by(|a, b| a.record.cmp(&b.record));
                let mut merged: Vec<EnsembleBranch> = Vec::with_capacity(next.len());
                for branch in next {
                    match merged.last_mut() {
                        Some(last) if last.record == branch.record => {
                            for i in 0..branch.state.dim() {
                                for j in 0..branch.state.dim() {
                                    *last.state.element_mut(i, j) =
                                        last.state.element(i, j) + branch.state.element(i, j);
                                }
                            }
                        }
                        _ => merged.push(branch),
                    }
                }
                if merged.len() > self.config.max_branches {
                    return Err(DensityError::BranchLimitExceeded {
                        limit: self.config.max_branches,
                    });
                }
                self.branches = merged;
            }
        }
        Ok(())
    }

    /// Applies a single-qubit Kraus channel to `qubit` of every branch.
    ///
    /// This is how noise models are combined with record tracking: the
    /// channel acts on the conditional state of each classical record
    /// independently (used by the `noise_study` example).
    ///
    /// # Panics
    ///
    /// Panics when the qubit is out of range.
    pub fn apply_channel(&mut self, channel: &crate::channels::KrausChannel, qubit: usize) {
        for branch in &mut self.branches {
            channel.apply(&mut branch.state, qubit);
        }
    }

    /// The probability distribution over classical records.
    pub fn outcome_distribution(&self) -> OutcomeDistribution {
        let mut distribution = OutcomeDistribution::new(self.n_bits);
        for branch in &self.branches {
            distribution.add(branch.record.clone(), branch.probability());
        }
        distribution
    }

    /// The total (record-averaged) density matrix `Σ_r ρ_r`.
    pub fn mixed_state(&self) -> DensityMatrix {
        let mut total = DensityMatrix::new(self.n_qubits).expect("register already validated");
        // Start from zero, not |0…0⟩⟨0…0|.
        *total.element_mut(0, 0) = dd::Complex::ZERO;
        for branch in &self.branches {
            for i in 0..total.dim() {
                for j in 0..total.dim() {
                    *total.element_mut(i, j) = total.element(i, j) + branch.state.element(i, j);
                }
            }
        }
        total
    }

    /// Total probability mass across all branches (1 up to pruning).
    pub fn total_probability(&self) -> f64 {
        self.branches.iter().map(EnsembleBranch::probability).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::QuantumCircuit;

    #[test]
    fn unconditional_gates_do_not_branch() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1).t(1);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        assert_eq!(ensemble.branches().len(), 1);
        assert!((ensemble.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_splits_branches() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).measure(0, 0);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        assert_eq!(ensemble.branches().len(), 2);
        let distribution = ensemble.outcome_distribution();
        assert!((distribution.probability(&[false]) - 0.5).abs() < 1e-12);
        assert!((distribution.probability(&[true]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_measurement_keeps_single_branch() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.x(0).measure(0, 0);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        assert_eq!(ensemble.branches().len(), 1);
        assert_eq!(ensemble.branches()[0].record, vec![true]);
    }

    #[test]
    fn classically_controlled_gate_applies_per_branch() {
        // Measure a |+⟩ qubit, then flip qubit 1 only when the outcome was 1:
        // afterwards qubit 1 is perfectly correlated with the record.
        let mut qc = QuantumCircuit::new(2, 1);
        qc.h(0).measure(0, 0).x_if(1, 0);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        for branch in ensemble.branches() {
            let mut state = branch.state.clone();
            state.normalize();
            let (p0, p1) = state.probabilities(1);
            if branch.record[0] {
                assert!((p1 - 1.0).abs() < 1e-12);
            } else {
                assert!((p0 - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn reset_does_not_branch_but_reuses_qubit() {
        let mut qc = QuantumCircuit::new(1, 2);
        qc.h(0).measure(0, 0).reset(0).h(0).measure(0, 1);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        let distribution = ensemble.outcome_distribution();
        assert_eq!(distribution.len(), 4);
        for (_, p) in distribution.iter() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn teleportation_preserves_the_state() {
        let mut ensemble_qc = QuantumCircuit::new(3, 2);
        // Prepare an arbitrary state on qubit 0 and teleport it to qubit 2.
        ensemble_qc.ry(0.8, 0).rz(0.3, 0);
        ensemble_qc.h(1).cx(1, 2);
        ensemble_qc.cx(0, 1).h(0);
        ensemble_qc.measure(0, 0).measure(1, 1);
        ensemble_qc
            .x_if(2, 1)
            .gate_if(circuit::StandardGate::Z, 2, 0, true);
        let mut ensemble = EnsembleSimulator::new(&ensemble_qc).unwrap();
        ensemble.run(&ensemble_qc).unwrap();

        // Every branch's reduced state on qubit 2 equals the prepared state.
        let mut reference = DensityMatrix::new(1).unwrap();
        reference.apply_gate(&dd::gates::ry(0.8), 0, &[]);
        reference.apply_gate(&dd::gates::rz(0.3), 0, &[]);
        for branch in ensemble.branches() {
            let mut state = branch.state.clone();
            state.normalize();
            let reduced = state.partial_trace(&[0, 1]);
            assert!(
                reduced.approx_eq(&reference, 1e-9),
                "teleported state differs in branch {:?}",
                branch.record
            );
        }
        assert_eq!(ensemble.branches().len(), 4);
    }

    #[test]
    fn branch_limit_is_enforced() {
        let mut qc = QuantumCircuit::new(3, 3);
        qc.h(0).h(1).h(2).measure(0, 0).measure(1, 1).measure(2, 2);
        let config = EnsembleConfig {
            max_branches: 4,
            ..Default::default()
        };
        let mut ensemble = EnsembleSimulator::with_config(&qc, config).unwrap();
        assert!(matches!(
            ensemble.run(&qc),
            Err(DensityError::BranchLimitExceeded { limit: 4 })
        ));
    }

    #[test]
    fn out_of_range_indices_are_reported() {
        let qc = QuantumCircuit::new(1, 1);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        assert!(matches!(
            ensemble.apply(&circuit::Operation::measure(3, 0)),
            Err(DensityError::QubitOutOfRange { qubit: 3, .. })
        ));
        assert!(matches!(
            ensemble.apply(&circuit::Operation::measure(0, 5)),
            Err(DensityError::BitOutOfRange { bit: 5, .. })
        ));
    }

    #[test]
    fn mixed_state_trace_is_total_probability() {
        let mut qc = QuantumCircuit::new(2, 2);
        qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        let mut ensemble = EnsembleSimulator::new(&qc).unwrap();
        ensemble.run(&qc).unwrap();
        let mixed = ensemble.mixed_state();
        assert!((mixed.trace() - 1.0).abs() < 1e-12);
        // The mixture of the two post-measurement states is diagonal.
        assert!(mixed.element(0, 3).abs() < 1e-12);
    }
}
