//! # density — density-matrix simulation of dynamic quantum circuits
//!
//! Section 5 of *Burgholzer & Wille, "Handling Non-Unitaries in Quantum
//! Circuit Equivalence Checking" (DAC 2022)* discusses density-matrix
//! simulators as the natural — but insufficient — tool for circuits with
//! non-unitary primitives: a density matrix handles resets, mid-circuit
//! measurements and decoherence without leaving the formalism, yet a single
//! simulation run only yields the state for *one particular* set of
//! measurement outcomes, not the complete outcome distribution.
//!
//! This crate provides that baseline, plus the fix:
//!
//! * [`DensityMatrix`] — a dense `2^n × 2^n` density operator with
//!   (controlled) gate application, Kraus channels, projective measurements,
//!   resets, dephasing, partial traces and fidelity computations.
//! * [`DensityMatrixSimulator`] — runs a circuit on a single density matrix.
//!   Measurements are treated non-selectively (the paper's limitation: the
//!   record distribution is lost), and an optional [`NoiseModel`] inserts a
//!   Kraus channel after every gate.
//! * [`EnsembleSimulator`] — tracks one unnormalised density matrix per
//!   classical measurement record and therefore recovers the *complete*
//!   outcome distribution. It serves as an exponential-memory reference
//!   oracle against which the paper's extraction scheme
//!   ([`sim::extract_distribution`]) is cross-validated in the test suite.
//! * [`KrausChannel`] — standard single-qubit noise channels (bit flip,
//!   phase flip, depolarising, amplitude damping, phase damping) used by the
//!   noise-model extension.
//!
//! Everything here is *dense* and therefore limited to small registers
//! (see [`MAX_DENSE_QUBITS`]); it exists for validation and ablation, not
//! for the Table 1 scale runs, which use the decision-diagram machinery.
//!
//! ```
//! use density::EnsembleSimulator;
//! use algorithms::qpe;
//!
//! // The paper's running example: 3-bit IQPE of U = P(3π/8).
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let iqpe = qpe::iqpe_dynamic(phi, 3);
//! let mut ensemble = EnsembleSimulator::new(&iqpe)?;
//! ensemble.run(&iqpe)?;
//! let distribution = ensemble.outcome_distribution();
//! // |001⟩ (c0 = 1) is one of the two most probable estimates of 3/16.
//! assert!(distribution.probability(&[true, false, false]) > 0.3);
//! # Ok::<(), density::DensityError>(())
//! ```

#![warn(missing_docs)]

mod channels;
mod ensemble;
mod error;
mod matrix;
mod simulator;

pub use channels::KrausChannel;
pub use ensemble::{EnsembleBranch, EnsembleConfig, EnsembleSimulator};
pub use error::DensityError;
pub use matrix::{DensityMatrix, MAX_DENSE_QUBITS};
pub use simulator::{DensityMatrixSimulator, NoiseModel};
