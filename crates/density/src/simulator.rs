//! Single-density-matrix simulation of (dynamic) circuits, with optional noise.

use crate::channels::KrausChannel;
use crate::error::DensityError;
use crate::matrix::DensityMatrix;
use circuit::{OpKind, QuantumCircuit};
use dd::Control;
use sim::gate_matrix;

/// A simple noise model: a Kraus channel applied to every qubit an operation
/// touches, immediately after the operation.
///
/// This mirrors the decoherence-aware density-matrix simulation the paper
/// cites as related work; it is an extension beyond the paper's noiseless
/// evaluation and is used by the examples to illustrate why verifying the
/// *ideal* circuits matters.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Channel applied after every single-qubit gate (on its target).
    pub single_qubit: Option<KrausChannel>,
    /// Channel applied after every controlled gate (on target and controls).
    pub two_qubit: Option<KrausChannel>,
    /// Channel applied after measurements and resets (on the measured qubit).
    pub readout: Option<KrausChannel>,
}

impl NoiseModel {
    /// The noiseless model.
    pub fn noiseless() -> Self {
        NoiseModel {
            single_qubit: None,
            two_qubit: None,
            readout: None,
        }
    }

    /// A uniform depolarising model with error probability `p1` after
    /// single-qubit gates and `p2` after controlled gates.
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        NoiseModel {
            single_qubit: Some(KrausChannel::depolarizing(p1)),
            two_qubit: Some(KrausChannel::depolarizing(p2)),
            readout: None,
        }
    }

    /// Returns `true` when no channel is configured.
    pub fn is_noiseless(&self) -> bool {
        self.single_qubit.is_none() && self.two_qubit.is_none() && self.readout.is_none()
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

/// Simulates a circuit on a single density matrix.
///
/// Measurements are applied *non-selectively* (the qubit is dephased and the
/// record discarded); consequently the simulator cannot report the
/// distribution over measurement records — the limitation of density-matrix
/// simulators the paper discusses in Section 5. Classically-controlled
/// operations are therefore rejected; use the
/// [`EnsembleSimulator`](crate::EnsembleSimulator) or the extraction scheme
/// for circuits that contain them.
///
/// # Examples
///
/// ```
/// use circuit::QuantumCircuit;
/// use density::{DensityMatrixSimulator, NoiseModel};
///
/// let mut qc = QuantumCircuit::new(2, 2);
/// qc.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
/// let mut sim = DensityMatrixSimulator::new(2, NoiseModel::noiseless())?;
/// sim.run(&qc)?;
/// let probabilities = sim.state().diagonal_probabilities();
/// assert!((probabilities[0] - 0.5).abs() < 1e-12);
/// assert!((probabilities[3] - 0.5).abs() < 1e-12);
/// # Ok::<(), density::DensityError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DensityMatrixSimulator {
    state: DensityMatrix,
    noise: NoiseModel,
    applied_operations: usize,
}

impl DensityMatrixSimulator {
    /// Creates a simulator in the |0…0⟩ state.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::TooManyQubits`] for oversized registers.
    pub fn new(n_qubits: usize, noise: NoiseModel) -> Result<Self, DensityError> {
        Ok(DensityMatrixSimulator {
            state: DensityMatrix::new(n_qubits)?,
            noise,
            applied_operations: 0,
        })
    }

    /// The current state.
    pub fn state(&self) -> &DensityMatrix {
        &self.state
    }

    /// Number of operations applied so far.
    pub fn applied_operations(&self) -> usize {
        self.applied_operations
    }

    /// Runs all operations of `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`DensityError::ClassicallyControlledUnsupported`] when the
    /// circuit conditions an operation on a classical bit, and index errors
    /// for malformed circuits.
    pub fn run(&mut self, circuit: &QuantumCircuit) -> Result<(), DensityError> {
        for op in circuit.iter() {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Applies a single operation.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn apply(&mut self, op: &circuit::Operation) -> Result<(), DensityError> {
        let n_qubits = self.state.num_qubits();
        for q in op.qubits() {
            if q >= n_qubits {
                return Err(DensityError::QubitOutOfRange { qubit: q, n_qubits });
            }
        }
        if op.condition.is_some() {
            return Err(DensityError::ClassicallyControlledUnsupported {
                operation: op.to_string(),
            });
        }
        match &op.kind {
            OpKind::Barrier => {}
            OpKind::Unitary {
                gate,
                target,
                controls,
            } => {
                let matrix = gate_matrix(*gate);
                let dd_controls: Vec<Control> = controls
                    .iter()
                    .map(|c| Control {
                        qubit: c.qubit,
                        positive: c.positive,
                    })
                    .collect();
                self.state.apply_gate(&matrix, *target, &dd_controls);
                let channel = if controls.is_empty() {
                    &self.noise.single_qubit
                } else {
                    &self.noise.two_qubit
                };
                if let Some(channel) = channel {
                    channel.apply(&mut self.state, *target);
                    for c in controls {
                        channel.apply(&mut self.state, c.qubit);
                    }
                }
            }
            OpKind::Measure { qubit, .. } => {
                self.state.dephase(*qubit);
                if let Some(channel) = &self.noise.readout {
                    channel.apply(&mut self.state, *qubit);
                }
            }
            OpKind::Reset { qubit } => {
                self.state.reset(*qubit);
                if let Some(channel) = &self.noise.readout {
                    channel.apply(&mut self.state, *qubit);
                }
            }
        }
        self.applied_operations += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::{Operation, StandardGate};

    #[test]
    fn noiseless_unitary_run_stays_pure() {
        let mut qc = QuantumCircuit::new(3, 0);
        qc.h(0).cx(0, 1).cx(1, 2).t(2);
        let mut sim = DensityMatrixSimulator::new(3, NoiseModel::noiseless()).unwrap();
        sim.run(&qc).unwrap();
        assert!((sim.state().purity() - 1.0).abs() < 1e-10);
        assert_eq!(sim.applied_operations(), 4);
    }

    #[test]
    fn classically_controlled_operation_is_rejected() {
        let mut sim = DensityMatrixSimulator::new(1, NoiseModel::noiseless()).unwrap();
        let op = Operation::conditioned(
            StandardGate::X,
            0,
            vec![],
            circuit::ClassicalCondition::is_one(0),
        );
        assert!(matches!(
            sim.apply(&op),
            Err(DensityError::ClassicallyControlledUnsupported { .. })
        ));
    }

    #[test]
    fn measurement_dephases_the_state() {
        let mut qc = QuantumCircuit::new(1, 1);
        qc.h(0).measure(0, 0);
        let mut sim = DensityMatrixSimulator::new(1, NoiseModel::noiseless()).unwrap();
        sim.run(&qc).unwrap();
        assert!((sim.state().purity() - 0.5).abs() < 1e-12);
        let probabilities = sim.state().diagonal_probabilities();
        assert!((probabilities[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_after_measurement_reuses_the_qubit() {
        let mut qc = QuantumCircuit::new(1, 2);
        qc.h(0).measure(0, 0).reset(0);
        let mut sim = DensityMatrixSimulator::new(1, NoiseModel::noiseless()).unwrap();
        sim.run(&qc).unwrap();
        let probabilities = sim.state().diagonal_probabilities();
        assert!((probabilities[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_noise_reduces_purity() {
        let mut qc = QuantumCircuit::new(2, 0);
        qc.h(0).cx(0, 1);
        let mut ideal = DensityMatrixSimulator::new(2, NoiseModel::noiseless()).unwrap();
        ideal.run(&qc).unwrap();
        let mut noisy =
            DensityMatrixSimulator::new(2, NoiseModel::depolarizing(0.01, 0.05)).unwrap();
        noisy.run(&qc).unwrap();
        assert!(noisy.state().purity() < ideal.state().purity());
        assert!((noisy.state().trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn noise_model_classification() {
        assert!(NoiseModel::noiseless().is_noiseless());
        assert!(NoiseModel::default().is_noiseless());
        assert!(!NoiseModel::depolarizing(0.001, 0.01).is_noiseless());
    }

    #[test]
    fn out_of_range_qubit_is_reported() {
        let mut sim = DensityMatrixSimulator::new(1, NoiseModel::noiseless()).unwrap();
        assert!(matches!(
            sim.apply(&Operation::reset(4)),
            Err(DensityError::QubitOutOfRange { qubit: 4, .. })
        ));
    }
}
