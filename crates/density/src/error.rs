//! Error type of the density-matrix layer.

use std::fmt;

/// Errors produced by the density-matrix simulators.
#[derive(Debug, Clone, PartialEq)]
pub enum DensityError {
    /// The register is too large for a dense density-matrix representation.
    TooManyQubits {
        /// Requested register size.
        n_qubits: usize,
        /// Hard limit of the dense representation.
        limit: usize,
    },
    /// An operation references a qubit outside the register.
    QubitOutOfRange {
        /// Offending qubit index.
        qubit: usize,
        /// Register size.
        n_qubits: usize,
    },
    /// An operation references a classical bit outside the register.
    BitOutOfRange {
        /// Offending bit index.
        bit: usize,
        /// Register size.
        n_bits: usize,
    },
    /// A plain density-matrix simulation cannot apply classically-controlled
    /// operations, because it does not track the measurement record
    /// (the limitation discussed in Section 5 of the paper). Use
    /// [`EnsembleSimulator`](crate::EnsembleSimulator) instead.
    ClassicallyControlledUnsupported {
        /// Display form of the offending operation.
        operation: String,
    },
    /// The ensemble simulation exceeded its branch budget.
    BranchLimitExceeded {
        /// Configured maximum number of branches.
        limit: usize,
    },
    /// An amplitude vector with a length that is not a power of two (or that
    /// disagrees with the register size) was supplied.
    InvalidAmplitudes {
        /// Length of the offending vector.
        len: usize,
        /// Expected length.
        expected: usize,
    },
}

impl fmt::Display for DensityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DensityError::TooManyQubits { n_qubits, limit } => write!(
                f,
                "dense density matrices are limited to {limit} qubits ({n_qubits} requested)"
            ),
            DensityError::QubitOutOfRange { qubit, n_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {n_qubits}-qubit register"
                )
            }
            DensityError::BitOutOfRange { bit, n_bits } => {
                write!(
                    f,
                    "classical bit {bit} out of range for {n_bits}-bit register"
                )
            }
            DensityError::ClassicallyControlledUnsupported { operation } => write!(
                f,
                "a single density matrix cannot apply `{operation}`: the measurement record is \
                 not tracked (use the ensemble simulator)"
            ),
            DensityError::BranchLimitExceeded { limit } => {
                write!(
                    f,
                    "ensemble simulation exceeded the branch budget of {limit}"
                )
            }
            DensityError::InvalidAmplitudes { len, expected } => write!(
                f,
                "amplitude vector of length {len} does not match the expected length {expected}"
            ),
        }
    }
}

impl std::error::Error for DensityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let e = DensityError::TooManyQubits {
            n_qubits: 20,
            limit: 12,
        };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("12"));

        let e = DensityError::ClassicallyControlledUnsupported {
            operation: "if (c[0] == 1) x q[1]".into(),
        };
        assert!(e.to_string().contains("ensemble"));

        let e = DensityError::BranchLimitExceeded { limit: 64 };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_e: &dyn std::error::Error) {}
        takes_error(&DensityError::QubitOutOfRange {
            qubit: 5,
            n_qubits: 2,
        });
    }
}
