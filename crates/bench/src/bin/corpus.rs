//! Generates compilation-flow verification corpora.
//!
//! Usage:
//!
//! ```text
//! corpus --out DIR [--families bv,qft,qpe] [--widths 4,6,8]
//!        [--couplings line,full] [--opt-levels 0,1] [--measured]
//! corpus --smoke
//! ```
//!
//! `--out` writes QASM snapshots of every staged compilation (families ×
//! widths × coupling maps × optimization levels) plus a `manifest.json`
//! with one endpoint pair and one per-pass chain per instance; feed it to
//! `verify --manifest DIR/manifest.json`.
//!
//! `--smoke` is the CI guard: it generates a tiny corpus (2 families × 2
//! widths) into a temporary directory, verifies it in chain mode and in
//! endpoint mode, and fails unless (a) every instance's chain verdict
//! matches its endpoint verdict, (b) the batch reports a `pairs_per_sec`
//! throughput, and (c) every chain reports carry-over hits after its first
//! step (`chain_hits > 0` — the warm store actually warmed).

use bench::corpus::{chains_only, endpoint_only, generate, parse_family, CorpusOptions, Coupling};
use portfolio::batch::{run_batch, BatchOptions};

struct Args {
    out: Option<std::path::PathBuf>,
    options: CorpusOptions,
    smoke: bool,
}

fn parse_list<T>(
    value: Option<String>,
    flag: &str,
    parse: impl Fn(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    let value = value.ok_or_else(|| format!("{flag} requires a value"))?;
    let items: Result<Vec<T>, String> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("{flag} requires a non-empty list"));
    }
    Ok(items)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        options: CorpusOptions::default(),
        smoke: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                let value = iter.next().ok_or("--out requires a value")?;
                args.out = Some(std::path::PathBuf::from(value));
            }
            "--families" => {
                args.options.families = parse_list(iter.next(), "--families", parse_family)?;
            }
            "--widths" => {
                args.options.widths = parse_list(iter.next(), "--widths", |s| {
                    s.parse::<usize>()
                        .map_err(|_| format!("invalid width `{s}`"))
                })?;
            }
            "--couplings" => {
                args.options.couplings = parse_list(iter.next(), "--couplings", Coupling::parse)?;
            }
            "--opt-levels" => {
                args.options.opt_levels = parse_list(iter.next(), "--opt-levels", |s| match s {
                    "0" => Ok(0),
                    "1" => Ok(1),
                    other => Err(format!("invalid optimization level `{other}` (0 or 1)")),
                })?;
            }
            "--measured" => args.options.measured = true,
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                println!(
                    "Usage: corpus --out DIR [--families bv,qft,qpe] [--widths 4,6,8]\n\
                     \x20             [--couplings line,full] [--opt-levels 0,1] [--measured]\n\
                     \x20      corpus --smoke"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.smoke == args.out.is_some() {
        return Err("exactly one of --out or --smoke is required".to_string());
    }
    Ok(Args {
        out: args.out,
        options: args.options,
        smoke: args.smoke,
    })
}

/// The CI smoke: tiny corpus, chain-vs-endpoint verdict parity, throughput
/// and carry-over telemetry sanity.
fn smoke() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("corpus-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // 2 families × 2 widths on the default line coupling: small enough for
    // CI, large enough that every chain has ≥4 steps and real carry-over.
    let corpus = generate(&dir, &CorpusOptions::default())?;
    println!(
        "smoke corpus: {} instances, {} files at {}",
        corpus.manifest.pairs.len(),
        corpus.files,
        dir.display()
    );
    // Reload through the batch loader so the manifest's relative paths are
    // resolved against the corpus directory (exactly what `verify` does).
    let manifest = portfolio::batch::load_manifest(&corpus.manifest_path)
        .map_err(|e| format!("generated manifest does not load: {e}"))?;

    // One worker so chains and pairs reuse pooled stores deterministically.
    let options = BatchOptions {
        workers: 1,
        ..BatchOptions::default()
    };
    let chain_report = run_batch(&chains_only(&manifest), &options);
    let endpoint_report = run_batch(&endpoint_only(&manifest), &options);

    let mut failures = Vec::new();
    for (chain, pair) in chain_report.chains.iter().zip(endpoint_report.pairs.iter()) {
        println!(
            "  {}: chain {:?} over {}/{} steps ({} carry-over hits) vs endpoint {:?}",
            chain.name,
            chain.verdict,
            chain.steps_verified,
            chain.steps_total,
            chain.chain_hits,
            pair.verdict,
        );
        if chain.considered_equivalent != pair.considered_equivalent {
            failures.push(format!(
                "`{}`: chain verdict {:?} disagrees with endpoint verdict {:?}",
                chain.name, chain.verdict, pair.verdict
            ));
        }
        if !chain.considered_equivalent {
            failures.push(format!(
                "`{}`: compiler output not equivalent (guilty pass {:?})",
                chain.name, chain.guilty_pass
            ));
        }
        if chain.chain_hits == 0 {
            failures.push(format!(
                "`{}`: no chain carry-over hits — the warm store never warmed",
                chain.name
            ));
        }
    }
    if chain_report.chains.len() != endpoint_report.pairs.len() {
        failures.push(format!(
            "chain mode ran {} chains but endpoint mode ran {} pairs",
            chain_report.chains.len(),
            endpoint_report.pairs.len()
        ));
    }
    if chain_report.pairs_per_sec.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        failures.push("chain batch reports no pairs_per_sec throughput".to_string());
    }
    if endpoint_report.pairs_per_sec.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        failures.push("endpoint batch reports no pairs_per_sec throughput".to_string());
    }
    println!(
        "smoke: chain {:.2} pairs/sec ({} step verifications), endpoint {:.2} pairs/sec",
        chain_report.pairs_per_sec,
        chain_report.chain_steps_verified,
        endpoint_report.pairs_per_sec,
    );
    let _ = std::fs::remove_dir_all(&dir);
    if failures.is_empty() {
        println!("smoke: OK");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("corpus: {message}");
            std::process::exit(2);
        }
    };
    if args.smoke {
        if let Err(message) = smoke() {
            eprintln!("corpus --smoke failed:\n{message}");
            std::process::exit(1);
        }
        return;
    }
    let out = args.out.expect("--out checked in parse_args");
    match generate(&out, &args.options) {
        Ok(corpus) => {
            println!(
                "corpus: {} endpoint pairs, {} chains, {} QASM files",
                corpus.manifest.pairs.len(),
                corpus.manifest.chain_specs().len(),
                corpus.files
            );
            println!("corpus: manifest at {}", corpus.manifest_path.display());
        }
        Err(message) => {
            eprintln!("corpus: {message}");
            std::process::exit(1);
        }
    }
}
