//! Regenerates Table 1 of the paper.
//!
//! Usage:
//!
//! ```text
//! table1 [--section bv|qft|qpe|all] [--full] [--sizes 8,12,16] [--leaf-limit N]
//!        [--measure-all] [--deadline SECS]
//! ```
//!
//! By default the harness runs reduced instance sizes that finish within a
//! couple of minutes on a laptop while preserving the qualitative shape of
//! the paper's results. `--full` switches to the paper's original qubit
//! counts.
//!
//! Rows run through the **portfolio engine** by default, so each row
//! finishes at the speed of its best scheme and reports the winner; pass
//! `--measure-all` to time every scheme separately (the paper's original
//! four-column protocol — the QPE rows then take a long time, exactly as in
//! the paper). `--deadline` bounds each row's wall-clock time.

use bench::{build_instance, format_section, run_row, Family, RowOptions, RowRunner};
use dd::Budget;
use qcec::Configuration;

struct Args {
    sections: Vec<Family>,
    full: bool,
    sizes: Option<Vec<usize>>,
    leaf_limit: Option<usize>,
    measure_all: bool,
    deadline: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sections: vec![Family::BernsteinVazirani, Family::Qft, Family::Qpe],
        full: false,
        sizes: None,
        leaf_limit: Some(1 << 22),
        measure_all: false,
        deadline: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--section" => {
                let value = iter.next().ok_or("--section requires a value")?;
                args.sections = match value.as_str() {
                    "bv" => vec![Family::BernsteinVazirani],
                    "qft" => vec![Family::Qft],
                    "qpe" => vec![Family::Qpe],
                    "all" => vec![Family::BernsteinVazirani, Family::Qft, Family::Qpe],
                    other => return Err(format!("unknown section `{other}`")),
                };
            }
            "--full" => args.full = true,
            "--sizes" => {
                let value = iter.next().ok_or("--sizes requires a value")?;
                let sizes: Result<Vec<usize>, _> =
                    value.split(',').map(|s| s.trim().parse()).collect();
                args.sizes = Some(sizes.map_err(|_| "invalid --sizes list".to_string())?);
            }
            "--leaf-limit" => {
                let value = iter.next().ok_or("--leaf-limit requires a value")?;
                args.leaf_limit = if value == "none" {
                    None
                } else {
                    Some(value.parse().map_err(|_| "invalid --leaf-limit")?)
                };
            }
            "--measure-all" => args.measure_all = true,
            "--deadline" => {
                let value = iter.next().ok_or("--deadline requires a value")?;
                let seconds: f64 = value.parse().map_err(|_| "invalid --deadline")?;
                if !seconds.is_finite() || seconds <= 0.0 {
                    return Err("--deadline must be a positive number of seconds".to_string());
                }
                args.deadline = Some(seconds);
            }
            "--help" | "-h" => {
                println!(
                    "usage: table1 [--section bv|qft|qpe|all] [--full] [--sizes a,b,c] \
                     [--leaf-limit N|none] [--measure-all] [--deadline SECS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };

    let config = Configuration::default();
    // `--leaf-limit` and `--deadline` map onto the same shared budget type
    // the cancellation machinery and the portfolio engine use. The budget is
    // rebuilt per row so the deadline is a *per-row* bound.
    let row_options = || {
        let mut budget = Budget::unlimited().with_leaf_limit(args.leaf_limit);
        if let Some(seconds) = args.deadline {
            budget = budget.with_deadline(std::time::Duration::from_secs_f64(seconds));
        }
        RowOptions {
            budget,
            runner: if args.measure_all {
                RowRunner::MeasureAll
            } else {
                RowRunner::Portfolio
            },
            ..Default::default()
        }
    };

    println!("Reproduction of Table 1 — \"Handling Non-Unitaries in Quantum Circuit Equivalence Checking\" (DAC 2022)");
    println!(
        "mode: {} instance sizes; runner: {}; extraction leaf limit: {}\n",
        if args.full { "paper" } else { "reduced" },
        if args.measure_all {
            "measure-all (paper protocol)"
        } else {
            "portfolio race"
        },
        args.leaf_limit
            .map(|l| l.to_string())
            .unwrap_or_else(|| "unlimited".into())
    );

    for family in &args.sections {
        let sizes = match &args.sizes {
            Some(sizes) => sizes.clone(),
            None if args.full => family.paper_sizes(),
            None => family.default_sizes(),
        };
        let mut rows = Vec::new();
        for n in sizes {
            let instance = build_instance(*family, n);
            eprintln!("running {} n={n} …", family.name());
            rows.push(run_row(&instance, &config, &row_options()));
        }
        println!("{}", format_section(*family, &rows));
    }
}
