//! Shared benchmark harness reproducing the evaluation of the paper.
//!
//! The paper's Table 1 evaluates three circuit families (Bernstein–Vazirani,
//! Quantum Fourier Transform, Quantum Phase Estimation), each in a static and
//! a dynamic realization, and reports four timings per instance:
//!
//! * `t_trans` — unitary reconstruction of the dynamic circuit (Section 4),
//! * `t_ver` — the subsequent functional equivalence check,
//! * `t_extract` — extraction of the dynamic circuit's measurement-outcome
//!   distribution (Section 5),
//! * `t_sim` — classical simulation of the static circuit.
//!
//! [`run_row`] performs all four measurements for one instance and returns a
//! [`TableRow`]; the `table1` binary prints them in the paper's format, and
//! the Criterion benches in `benches/` time the individual components.
//!
//! Beyond Table 1, the [`corpus`] module (and the `corpus` binary) generates
//! compilation-flow corpora — staged-compilation QASM snapshots plus a
//! manifest of endpoint pairs and per-pass chains — for the incremental
//! verification workload:
//!
//! ```text
//! corpus --out /tmp/corpus --families bv,qft --widths 4,6 \
//!        --couplings line,full --opt-levels 0,1
//! verify --manifest /tmp/corpus/manifest.json
//! corpus --smoke    # the CI guard: chain-vs-endpoint verdict parity
//! ```

pub mod corpus;
pub mod emit;

use algorithms::{bv, qft, qpe};
use circuit::QuantumCircuit;
use dd::Budget;
use portfolio::{verify_portfolio, PortfolioConfig, Scheme};
use qcec::{check_functional_equivalence_with, CheckError, Configuration, Equivalence, Strategy};
use sim::{extract_distribution_budgeted, ExtractionConfig, SimError, StateVectorSimulator};
use std::time::{Duration, Instant};
use transform::{align_to_reference, reconstruct_unitary};

/// Minimum wall time over `runs` evaluations of `f`, discarding the results.
///
/// The standard noise-robust aggregate of the bench targets: minima are far
/// more stable than means for sub-millisecond portfolio races, where thread
/// spawn and scheduler jitter dominate individual samples.
pub fn min_wall_time<T>(runs: usize, mut f: impl FnMut() -> T) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..runs.max(1) {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// The three benchmark families of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Bernstein–Vazirani with a pseudo-random hidden string.
    BernsteinVazirani,
    /// Quantum Fourier Transform (swap-free; approximate above 64 qubits,
    /// mirroring the paper's large instances).
    Qft,
    /// Quantum Phase Estimation of an exactly representable random phase.
    Qpe,
}

impl Family {
    /// Short lower-case name used on the command line.
    pub fn name(self) -> &'static str {
        match self {
            Family::BernsteinVazirani => "bv",
            Family::Qft => "qft",
            Family::Qpe => "qpe",
        }
    }

    /// Display title matching the paper's table sections.
    pub fn title(self) -> &'static str {
        match self {
            Family::BernsteinVazirani => "Bernstein-Vazirani",
            Family::Qft => "Quantum Fourier Transform",
            Family::Qpe => "Quantum Phase Estimation",
        }
    }

    /// The static-circuit qubit counts used by the paper.
    pub fn paper_sizes(self) -> Vec<usize> {
        match self {
            Family::BernsteinVazirani => (121..=128).collect(),
            Family::Qft => {
                let mut sizes: Vec<usize> = (23..=26).collect();
                sizes.extend(125..=128);
                sizes
            }
            Family::Qpe => (43..=50).collect(),
        }
    }

    /// Reduced qubit counts suitable for a quick laptop run (the shape of
    /// the results is preserved; see `EXPERIMENTS.md`).
    pub fn default_sizes(self) -> Vec<usize> {
        match self {
            Family::BernsteinVazirani => vec![17, 33, 49, 65],
            Family::Qft => vec![8, 10, 12, 14],
            Family::Qpe => vec![9, 11, 13, 15, 17],
        }
    }
}

/// A benchmark instance: a static circuit and its dynamic realization.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The family this instance belongs to.
    pub family: Family,
    /// Qubits of the static circuit (the paper's leading `n` column).
    pub n: usize,
    /// The static realization (measured).
    pub static_circuit: QuantumCircuit,
    /// The dynamic realization.
    pub dynamic_circuit: QuantumCircuit,
}

/// Deterministic seed so every run benchmarks identical circuits.
const SEED: u64 = 20220701;

/// Rotation cutoff used for the large approximate-QFT instances, mirroring
/// the paper's gate counts (rotations beyond distance 58 are below double
/// precision anyway).
pub const QFT_APPROXIMATION_DISTANCE: usize = 58;

/// Builds the static circuit of `family` alone, with the same seeded
/// parameters as [`build_instance`], optionally without the final
/// measurements.
///
/// The unmeasured form is what the compilation corpus (see [`corpus`])
/// verifies: the paper's Fig. 1b use case checks that compilation preserved
/// a *unitary*, and leaving measurements off keeps distribution-based
/// schemes from certifying only the observable outcome statistics.
pub fn build_static(family: Family, n: usize, measured: bool) -> QuantumCircuit {
    match family {
        Family::BernsteinVazirani => {
            assert!(n >= 2, "BV needs at least one input qubit plus the ancilla");
            let hidden = bv::random_hidden_string(n - 1, SEED ^ n as u64);
            bv::bv_static(&hidden, measured)
        }
        Family::Qft => {
            let approx = if n > 64 {
                Some(QFT_APPROXIMATION_DISTANCE)
            } else {
                None
            };
            qft::qft_static(n, approx, measured)
        }
        Family::Qpe => {
            assert!(
                n >= 2,
                "QPE needs at least one counting qubit plus the eigenstate"
            );
            let m = n - 1;
            let phi = qpe::random_exact_phase(m, SEED ^ n as u64);
            qpe::qpe_static(phi, m, measured)
        }
    }
}

/// Builds the benchmark instance of `family` with `n` static-circuit qubits.
pub fn build_instance(family: Family, n: usize) -> Instance {
    let static_circuit = build_static(family, n, true);
    let dynamic_circuit = match family {
        Family::BernsteinVazirani => {
            let hidden = bv::random_hidden_string(n - 1, SEED ^ n as u64);
            bv::bv_dynamic(&hidden)
        }
        Family::Qft => {
            let approx = if n > 64 {
                Some(QFT_APPROXIMATION_DISTANCE)
            } else {
                None
            };
            qft::qft_dynamic_approx(n, approx)
        }
        Family::Qpe => {
            let m = n - 1;
            let phi = qpe::random_exact_phase(m, SEED ^ n as u64);
            qpe::iqpe_dynamic(phi, m)
        }
    };
    Instance {
        family,
        n,
        static_circuit,
        dynamic_circuit,
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Static-circuit qubit count.
    pub n_static: usize,
    /// Static-circuit gate count (excluding measurements, as in the paper).
    pub g_static: usize,
    /// Dynamic-circuit qubit count.
    pub n_dynamic: usize,
    /// Dynamic-circuit gate count.
    pub g_dynamic: usize,
    /// Runtime of the transformation scheme (Section 4).
    pub t_trans: Duration,
    /// Runtime of the subsequent functional equivalence check.
    pub t_ver: Duration,
    /// Verdict of the functional check.
    pub functional: Equivalence,
    /// Runtime of the extraction scheme (Section 5); `None` when the
    /// extraction was cut off by the leaf budget (printed as "—").
    pub t_extract: Option<Duration>,
    /// Runtime of the classical simulation of the static circuit.
    pub t_sim: Duration,
    /// Winning scheme of a portfolio row (`None` for measure-all rows).
    pub winner: Option<String>,
}

/// How a Table 1 row obtains its verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowRunner {
    /// Measure every scheme separately — the paper's original protocol,
    /// filling all four timing columns. The library default, so tests and
    /// ablation sweeps keep the paper's semantics.
    #[default]
    MeasureAll,
    /// Race all applicable schemes through the portfolio engine: the row
    /// finishes at the speed of the best scheme and reports the winner.
    /// The `table1` binary defaults to this (pass `--measure-all` there for
    /// the paper protocol).
    ///
    /// The budget's node/leaf limits and deadline carry over into the race,
    /// but its *cancel token* does not — the engine manages its own
    /// winner-cancels-losers token. To bound a portfolio row externally,
    /// give the budget a deadline.
    Portfolio,
}

/// Options controlling a [`run_row`] invocation.
#[derive(Debug, Clone)]
pub struct RowOptions {
    /// Resource budget shared by every measurement of the row — the same
    /// [`dd::Budget`] the cancellation machinery and the portfolio engine
    /// use, so `table1 --leaf-limit` and a portfolio leaf limit mean exactly
    /// the same thing. The default caps extraction at `2^22` leaves.
    pub budget: Budget,
    /// Skip the functional-verification part (useful for extraction-only
    /// sweeps).
    pub skip_functional: bool,
    /// Skip the extraction/simulation part.
    pub skip_fixed_input: bool,
    /// Scheme runner for the row (see [`RowRunner`]).
    pub runner: RowRunner,
}

impl Default for RowOptions {
    fn default() -> Self {
        RowOptions {
            budget: Budget::unlimited().with_leaf_limit(1 << 22),
            skip_functional: false,
            skip_fixed_input: false,
            runner: RowRunner::default(),
        }
    }
}

/// Gate count excluding measurements and barriers, matching how the paper
/// counts `|G|` for the static circuits.
pub fn unitary_gate_count(circuit: &QuantumCircuit) -> usize {
    let counts = circuit.counts();
    counts.unitary + counts.resets + counts.classically_controlled
}

/// Performs the measurements of one Table 1 row.
///
/// With [`RowRunner::MeasureAll`] the four timings of the paper are measured
/// separately; with [`RowRunner::Portfolio`] all applicable schemes race and
/// the row reports the winner's verdict and time (losing schemes are
/// cancelled, so their columns may be empty).
///
/// # Panics
///
/// Panics when the transformation or the equivalence check fails — for the
/// generated benchmark families this indicates a bug, not a user error.
pub fn run_row(instance: &Instance, config: &Configuration, options: &RowOptions) -> TableRow {
    let static_circuit = &instance.static_circuit;
    let dynamic_circuit = &instance.dynamic_circuit;

    if options.runner == RowRunner::Portfolio {
        return run_row_portfolio(instance, config, options);
    }

    // --- Scheme 1: transformation + functional verification -------------
    let (t_trans, t_ver, functional) = if options.skip_functional {
        (Duration::ZERO, Duration::ZERO, Equivalence::NoInformation)
    } else {
        let start = Instant::now();
        let reconstruction =
            reconstruct_unitary(dynamic_circuit).expect("benchmark circuits are reconstructible");
        let t_trans = start.elapsed();

        let start = Instant::now();
        let aligned = align_to_reference(static_circuit, &reconstruction.circuit)
            .expect("benchmark circuits align through their measurement bits");
        let verdict = match check_functional_equivalence_with(
            static_circuit,
            &aligned,
            config,
            &options.budget,
        ) {
            Ok(check) => check.equivalence,
            // The row budget (--deadline, node/leaf limits) cut the
            // check off: report the time spent and no information,
            // instead of panicking — this is what lets measure-all
            // rows terminate at paper sizes.
            Err(CheckError::LimitExceeded(_)) => Equivalence::NoInformation,
            Err(error) => panic!("benchmark circuits are checkable: {error}"),
        };
        (t_trans, start.elapsed(), verdict)
    };

    // --- Scheme 2: extraction vs. classical simulation -------------------
    let (t_extract, t_sim) = if options.skip_fixed_input {
        (None, Duration::ZERO)
    } else {
        let start = Instant::now();
        let extraction = extract_distribution_budgeted(
            dynamic_circuit,
            None,
            &ExtractionConfig::default(),
            &options.budget,
        );
        let t_extract = match extraction {
            Ok(_) => Some(start.elapsed()),
            Err(_) => None,
        };

        let start = Instant::now();
        let mut simulator =
            StateVectorSimulator::with_budget(static_circuit.num_qubits(), options.budget.clone());
        let t_sim = match simulator.run(static_circuit) {
            Ok(_) => start.elapsed(),
            // Budget cut the simulation off mid-run; the table prints "—".
            Err(SimError::Interrupted(_)) => Duration::ZERO,
            Err(error) => panic!("static benchmark circuits are unitary: {error}"),
        };
        (t_extract, t_sim)
    };

    TableRow {
        n_static: static_circuit.num_qubits(),
        g_static: unitary_gate_count(static_circuit),
        n_dynamic: dynamic_circuit.num_qubits(),
        g_dynamic: dynamic_circuit.gate_count(),
        t_trans,
        t_ver,
        functional,
        t_extract,
        t_sim,
        winner: None,
    }
}

/// Portfolio-runner body of [`run_row`]: one race instead of four separate
/// measurements, so the row finishes at the speed of the best scheme.
fn run_row_portfolio(
    instance: &Instance,
    config: &Configuration,
    options: &RowOptions,
) -> TableRow {
    let static_circuit = &instance.static_circuit;
    let dynamic_circuit = &instance.dynamic_circuit;
    let strategies = [
        Strategy::Proportional,
        Strategy::OneToOne,
        Strategy::Reference,
    ];
    let schemes = if options.skip_functional {
        vec![Scheme::FixedInput]
    } else if options.skip_fixed_input {
        strategies
            .iter()
            .map(|&s| Scheme::DynamicFunctional(s))
            .collect()
    } else {
        Vec::new() // auto-select
    };
    let portfolio_config = PortfolioConfig {
        configuration: *config,
        schemes,
        node_limit: options.budget.max_nodes(),
        leaf_limit: options.budget.max_leaves(),
        deadline: options
            .budget
            .deadline()
            .map(|at| at.saturating_duration_since(Instant::now())),
        ..Default::default()
    };
    let result = verify_portfolio(static_circuit, dynamic_circuit, &portfolio_config);
    // The losing schemes are cancelled, so only the columns the winner (or a
    // scheme that still finished) covers are populated.
    let t_extract = result
        .schemes
        .iter()
        .find(|r| r.scheme == Scheme::FixedInput && r.verdict.is_some())
        .map(|r| r.duration);
    TableRow {
        n_static: static_circuit.num_qubits(),
        g_static: unitary_gate_count(static_circuit),
        n_dynamic: dynamic_circuit.num_qubits(),
        g_dynamic: dynamic_circuit.gate_count(),
        t_trans: Duration::ZERO,
        t_ver: result.time_to_verdict,
        functional: result.verdict,
        t_extract,
        t_sim: Duration::ZERO,
        winner: result.winner.map(|s| s.name().to_string()),
    }
}

/// Formats a duration in seconds with four decimals, like the paper.
pub fn seconds(duration: Duration) -> String {
    format!("{:.4}", duration.as_secs_f64())
}

/// Formats a possibly-unmeasured duration: skipped phases carry exactly
/// `Duration::ZERO` (a real measurement is never exact zero) and print as
/// "—", matching the cut-off `t_extract` column.
fn seconds_or_dash(duration: Duration) -> String {
    if duration == Duration::ZERO {
        "—".into()
    } else {
        seconds(duration)
    }
}

/// Renders a table section (header plus rows) in the layout of the paper's
/// Table 1. Portfolio rows get an extra trailing `winner` column.
pub fn format_section(family: Family, rows: &[TableRow]) -> String {
    let with_winner = rows.iter().any(|row| row.winner.is_some());
    let mut out = String::new();
    out.push_str(&format!("{}\n", family.title()));
    out.push_str(&format!(
        "{:>5} {:>7} {:>5} {:>7} {:>12} {:>12} {:>12} {:>13} {:>12}",
        "n", "|G|", "n'", "|G'|", "t_trans[s]", "t_ver[s]", "verdict", "t_extract[s]", "t_sim[s]"
    ));
    if with_winner {
        out.push_str(&format!(" {:>28}", "winner"));
    }
    out.push('\n');
    for row in rows {
        let verdict = match row.functional {
            Equivalence::Equivalent => "equiv",
            Equivalence::EquivalentUpToGlobalPhase => "equiv*",
            Equivalence::NotEquivalent => "NOT equiv",
            Equivalence::ProbablyEquivalent => "prob equiv",
            Equivalence::NoInformation => "-",
        };
        out.push_str(&format!(
            "{:>5} {:>7} {:>5} {:>7} {:>12} {:>12} {:>12} {:>13} {:>12}",
            row.n_static,
            row.g_static,
            row.n_dynamic,
            row.g_dynamic,
            seconds_or_dash(row.t_trans),
            seconds(row.t_ver),
            verdict,
            row.t_extract.map(seconds).unwrap_or_else(|| "—".into()),
            seconds_or_dash(row.t_sim),
        ));
        if with_winner {
            out.push_str(&format!(" {:>28}", row.winner.as_deref().unwrap_or("-")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_match_paper_gate_counts() {
        // Spot-check the |G| columns of Table 1 that are reproduced exactly.
        let qft23 = build_instance(Family::Qft, 23);
        assert_eq!(unitary_gate_count(&qft23.static_circuit), 276);
        assert_eq!(qft23.dynamic_circuit.gate_count(), 321);

        let qft125 = build_instance(Family::Qft, 125);
        assert_eq!(unitary_gate_count(&qft125.static_circuit), 5664);

        let bv121 = build_instance(Family::BernsteinVazirani, 121);
        // 2n − 1 + |s| with a random string: within a few gates of the paper.
        let g = unitary_gate_count(&bv121.static_circuit);
        assert!((280..=320).contains(&g), "unexpected BV gate count {g}");
    }

    #[test]
    fn small_rows_run_and_verify() {
        for family in [Family::BernsteinVazirani, Family::Qft, Family::Qpe] {
            let n = match family {
                Family::Qft => 5,
                _ => 6,
            };
            let instance = build_instance(family, n);
            let row = run_row(&instance, &Configuration::default(), &RowOptions::default());
            assert!(
                row.functional.considered_equivalent(),
                "{family:?} row not equivalent"
            );
            assert!(row.t_extract.is_some());
            assert_eq!(row.n_dynamic, instance.dynamic_circuit.num_qubits());
        }
    }

    #[test]
    fn extraction_cutoff_produces_dash() {
        let instance = build_instance(Family::Qft, 10);
        let options = RowOptions {
            budget: Budget::unlimited().with_leaf_limit(4),
            skip_functional: true,
            ..Default::default()
        };
        let row = run_row(&instance, &Configuration::default(), &options);
        assert!(row.t_extract.is_none());
        let text = format_section(Family::Qft, &[row]);
        assert!(text.contains('—'));
    }

    #[test]
    fn measure_all_rows_terminate_under_an_expired_deadline() {
        // The paper-size QPE rows only finish in measure-all mode because
        // the row budget's deadline cuts the functional check and the
        // classical simulation off; pin that neither panics and both
        // columns degrade honestly (no-information verdict, "—" timings).
        let instance = build_instance(Family::Qpe, 9);
        let options = RowOptions {
            budget: Budget::unlimited().with_deadline(Duration::ZERO),
            ..Default::default()
        };
        let row = run_row(&instance, &Configuration::default(), &options);
        assert_eq!(row.functional, Equivalence::NoInformation);
        assert!(row.t_extract.is_none());
        assert_eq!(row.t_sim, Duration::ZERO);
        let text = format_section(Family::Qpe, &[row]);
        assert!(text.contains('—'));
    }

    #[test]
    fn section_formatting_contains_all_columns() {
        let instance = build_instance(Family::BernsteinVazirani, 6);
        let row = run_row(&instance, &Configuration::default(), &RowOptions::default());
        let text = format_section(Family::BernsteinVazirani, &[row]);
        assert!(text.contains("Bernstein-Vazirani"));
        assert!(text.contains("t_trans"));
        assert!(text.contains("t_extract"));
        assert!(text.contains("equiv"));
    }

    #[test]
    fn portfolio_runner_verifies_and_names_a_winner() {
        for family in [Family::BernsteinVazirani, Family::Qft, Family::Qpe] {
            let instance = build_instance(family, 6);
            let options = RowOptions {
                runner: RowRunner::Portfolio,
                ..Default::default()
            };
            let row = run_row(&instance, &Configuration::default(), &options);
            assert!(
                row.functional.considered_equivalent(),
                "{family:?} portfolio row not equivalent"
            );
            assert!(row.winner.is_some(), "{family:?} row has no winner");
            assert!(row.t_ver.as_nanos() > 0);
        }
        let instance = build_instance(Family::Qpe, 6);
        let options = RowOptions {
            runner: RowRunner::Portfolio,
            ..Default::default()
        };
        let row = run_row(&instance, &Configuration::default(), &options);
        let text = format_section(Family::Qpe, &[row]);
        assert!(text.contains("winner"));
    }

    #[test]
    fn paper_and_default_sizes_are_consistent() {
        for family in [Family::BernsteinVazirani, Family::Qft, Family::Qpe] {
            assert!(!family.paper_sizes().is_empty());
            assert!(!family.default_sizes().is_empty());
            assert!(family.default_sizes().iter().all(|&n| n >= 2));
        }
        assert_eq!(Family::Qpe.paper_sizes(), (43..=50).collect::<Vec<_>>());
    }
}
