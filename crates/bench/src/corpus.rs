//! Compilation-corpus generation for incremental verification.
//!
//! The paper's compilation-flow use case (Section 2.3) verifies a circuit
//! against its compiled form. Incremental verification instead checks the
//! pipeline pass-by-pass (see `portfolio::chain`), which needs *corpora*:
//! directories of QASM snapshots plus a manifest naming the endpoint pairs
//! and the per-pass chains. This module generates them deterministically —
//! families × widths × coupling maps × optimization levels, each compiled
//! through the workspace's own staged compiler — so the `corpus` binary,
//! the `corpus` bench and the CI smoke all agree on what a corpus is.
//!
//! Every generated instance contributes two manifest entries over the same
//! snapshot files:
//!
//! * a [`ChainSpec`] with the original and each pass output in pipeline
//!   order (verified pass-by-pass on one warm store), and
//! * a [`PairSpec`] of original vs. final circuit (the classical endpoint
//!   check), so chain and endpoint mode can be compared on identical input.

use crate::{build_static, Family};
use compile::{Compiler, CompilerOptions, CouplingMap, NativeBasis, Target};
use portfolio::batch::{Manifest, PairSpec};
use portfolio::{ChainSpec, ChainStepSpec};
use std::path::{Path, PathBuf};

/// Device connectivity of a corpus entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coupling {
    /// Linear nearest-neighbour chain — routing inserts SWAP ladders, so
    /// the compiled circuit drifts furthest from the original.
    Line,
    /// All-to-all — no routing pressure; the chain's route step is nearly
    /// the identity.
    Full,
}

impl Coupling {
    /// Short name used on the command line and in file stems.
    pub fn name(self) -> &'static str {
        match self {
            Coupling::Line => "line",
            Coupling::Full => "full",
        }
    }

    /// The concrete coupling map for an `n`-qubit circuit.
    pub fn map(self, n: usize) -> CouplingMap {
        match self {
            Coupling::Line => CouplingMap::line(n),
            Coupling::Full => CouplingMap::full(n),
        }
    }

    /// Parses a command-line coupling name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name.
    pub fn parse(text: &str) -> Result<Coupling, String> {
        match text {
            "line" => Ok(Coupling::Line),
            "full" => Ok(Coupling::Full),
            other => Err(format!("unknown coupling `{other}` (line, full)")),
        }
    }
}

/// Parses a command-line family name (`bv`, `qft`, `qpe`).
///
/// # Errors
///
/// Returns the unknown name.
pub fn parse_family(text: &str) -> Result<Family, String> {
    for family in [Family::BernsteinVazirani, Family::Qft, Family::Qpe] {
        if family.name() == text {
            return Ok(family);
        }
    }
    Err(format!("unknown family `{text}` (bv, qft, qpe)"))
}

/// What [`generate`] produces: the cartesian product of these axes.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// Circuit families (original circuits are the families' *static*
    /// realizations; see [`CorpusOptions::measured`]).
    pub families: Vec<Family>,
    /// Static-circuit qubit counts.
    pub widths: Vec<usize>,
    /// Device connectivities to compile for.
    pub couplings: Vec<Coupling>,
    /// Optimization levels: `0` skips the peephole pass (3-step chains),
    /// `1` runs it (4-step chains).
    pub opt_levels: Vec<u8>,
    /// Keep the families' final measurements on the original circuits.
    ///
    /// Off by default: compilation verification checks that a *unitary*
    /// was preserved (the paper's Fig. 1b), and on measured circuits the
    /// portfolio's distribution-based fixed-input scheme certifies only
    /// the observable outcome statistics — on families like QFT, whose
    /// output distribution from |0…0⟩ is uniform, that check cannot see a
    /// mid-circuit corruption at all.
    pub measured: bool,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            families: vec![Family::BernsteinVazirani, Family::Qft],
            widths: vec![4, 6],
            couplings: vec![Coupling::Line],
            opt_levels: vec![1],
            measured: false,
        }
    }
}

/// Result of a [`generate`] run.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The manifest that was written (pairs and chains over the same
    /// snapshot files, in generation order: one pair and one chain per
    /// instance, so `pairs[i]` and `chains[i]` describe the same
    /// pipeline).
    pub manifest: Manifest,
    /// Where `manifest.json` was written.
    pub manifest_path: PathBuf,
    /// QASM snapshot files written.
    pub files: usize,
}

/// Generates a corpus into `dir`: QASM snapshots of every staged
/// compilation plus a `manifest.json` with one endpoint [`PairSpec`] and
/// one per-pass [`ChainSpec`] per instance. Paths in the manifest are
/// relative to `dir`, so the directory is relocatable.
///
/// Generation is deterministic (the families' seeded builders), so two
/// runs with the same options produce byte-identical corpora.
///
/// # Errors
///
/// Returns a message when a circuit fails to compile or a file cannot be
/// written.
pub fn generate(dir: &Path, options: &CorpusOptions) -> Result<GeneratedCorpus, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut manifest = Manifest {
        pairs: Vec::new(),
        chains: Some(Vec::new()),
    };
    let mut files = 0;
    for &family in &options.families {
        for &n in &options.widths {
            let original = build_static(family, n, options.measured);
            for &coupling in &options.couplings {
                for &level in &options.opt_levels {
                    let name = format!("{}{n}-{}-o{level}", family.name(), coupling.name());
                    let width = original.num_qubits();
                    let target = Target {
                        coupling: coupling.map(width),
                        basis: NativeBasis::U3Cx,
                    };
                    let compiler = Compiler::with_options(
                        target,
                        CompilerOptions {
                            optimize: level >= 1,
                            restore_layout: true,
                        },
                    );
                    let staged = compiler
                        .compile_staged(&original)
                        .map_err(|e| format!("{name}: compilation failed: {e}"))?;
                    let mut steps = Vec::new();
                    for (index, (pass, circuit)) in staged.chain().iter().enumerate() {
                        let file = format!("{name}.{index}-{pass}.qasm");
                        std::fs::write(dir.join(&file), circuit::qasm::to_qasm(circuit))
                            .map_err(|e| format!("cannot write {file}: {e}"))?;
                        files += 1;
                        steps.push(ChainStepSpec {
                            pass: Some((*pass).to_string()),
                            path: file,
                        });
                    }
                    manifest.pairs.push(PairSpec {
                        name: Some(format!("{name}-endpoint")),
                        left: steps.first().expect("chain has an original").path.clone(),
                        right: steps.last().expect("chain has passes").path.clone(),
                        qubits: Some(width),
                    });
                    manifest
                        .chains
                        .as_mut()
                        .expect("chains initialised above")
                        .push(ChainSpec {
                            name: Some(name),
                            qubits: Some(width),
                            steps,
                        });
                }
            }
        }
    }
    let manifest_path = dir.join("manifest.json");
    let json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| format!("cannot serialise manifest: {e}"))?;
    std::fs::write(&manifest_path, json)
        .map_err(|e| format!("cannot write {}: {e}", manifest_path.display()))?;
    Ok(GeneratedCorpus {
        manifest,
        manifest_path,
        files,
    })
}

/// The endpoint-mode view of a corpus manifest: pairs only.
pub fn endpoint_only(manifest: &Manifest) -> Manifest {
    Manifest {
        pairs: manifest.pairs.clone(),
        chains: None,
    }
}

/// The chain-mode view of a corpus manifest: chains only.
pub fn chains_only(manifest: &Manifest) -> Manifest {
    Manifest {
        pairs: Vec::new(),
        chains: manifest.chains.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corpus_generates_relocatable_manifest() {
        let dir = std::env::temp_dir().join(format!("corpus-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = CorpusOptions {
            families: vec![Family::Qft],
            widths: vec![4],
            couplings: vec![Coupling::Line, Coupling::Full],
            opt_levels: vec![0, 1],
            measured: false,
        };
        let corpus = generate(&dir, &options).expect("tiny corpus generates");
        // 2 couplings × 2 levels; o0 chains have 4 circuits, o1 have 5.
        assert_eq!(corpus.manifest.pairs.len(), 4);
        assert_eq!(corpus.manifest.chain_specs().len(), 4);
        assert_eq!(corpus.files, 2 * (4 + 5));
        for (pair, chain) in corpus
            .manifest
            .pairs
            .iter()
            .zip(corpus.manifest.chain_specs())
        {
            assert_eq!(pair.qubits, chain.qubits);
            assert!(chain.steps.len() >= 4);
            assert_eq!(
                chain.steps.first().unwrap().pass.as_deref(),
                Some("original")
            );
            // Relative, relocatable paths.
            for step in &chain.steps {
                assert!(!step.path.starts_with('/'), "absolute path {}", step.path);
                assert!(dir.join(&step.path).exists());
            }
        }
        // The written manifest round-trips through the batch loader.
        let reloaded =
            portfolio::batch::load_manifest(&corpus.manifest_path).expect("manifest loads");
        assert_eq!(reloaded.pairs.len(), 4);
        assert_eq!(reloaded.chain_specs().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
