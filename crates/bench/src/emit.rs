//! Shared emitter for the `BENCH_*.json` artifacts checked in at the
//! repository root.
//!
//! Every artifact gets the same envelope — a schema version, the machine
//! the numbers were taken on, and a mandatory list of caveats — so that a
//! reader (or a later session diffing two artifacts) can tell at a glance
//! whether two files are comparable. The JSON is hand-formatted: the bench
//! crate deliberately takes no serialisation dependency, and the envelope
//! is flat enough that string assembly stays readable.

use std::fmt::Write as _;

/// Version of the `BENCH_*.json` envelope. Bump when the envelope shape
/// changes (payload sections are bench-specific and unversioned).
pub const SCHEMA_VERSION: u32 = 1;

/// Best-effort CPU model string: first `model name` line of
/// `/proc/cpuinfo`, or the architecture when unavailable (non-Linux).
fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|line| line.starts_with("model name"))
                .and_then(|line| line.split(':').nth(1))
                .map(|model| model.trim().to_string())
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_string())
}

/// The `"machine"` envelope block as a JSON object string.
///
/// Recorded so that checked-in numbers are never mistaken for portable
/// ones: arch, OS, CPU model and the core count the run had available.
pub fn machine_block() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{{ \"arch\": \"{}\", \"os\": \"{}\", \"cpu\": \"{}\", \"cores\": {} }}",
        std::env::consts::ARCH,
        std::env::consts::OS,
        cpu_model().replace('"', "'"),
        cores
    )
}

/// Assembles a full `BENCH_*.json` document.
///
/// `caveats` is deliberately not optional: a benchmark artifact without a
/// statement of what its numbers mislead about is a bug, mirroring the
/// metric-catalogue rule in `obs`. `sections` are `(key, raw-JSON-value)`
/// pairs appended verbatim after the envelope — the caller owns their
/// formatting (typically an `"instances"` or `"kernels"` array).
pub fn envelope(
    bench: &str,
    description: &str,
    caveats: &[&str],
    sections: &[(&str, String)],
) -> String {
    assert!(
        !caveats.is_empty(),
        "BENCH artifacts must state their caveats"
    );
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"bench\": \"{bench}\",");
    let _ = writeln!(out, "  \"description\": \"{description}\",");
    let _ = writeln!(out, "  \"machine\": {},", machine_block());
    out.push_str("  \"caveats\": [\n");
    for (i, caveat) in caveats.iter().enumerate() {
        let comma = if i + 1 < caveats.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{caveat}\"{comma}");
    }
    out.push_str("  ],");
    for (i, (key, value)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        let _ = write!(out, "\n  \"{key}\": {value}{comma}");
    }
    out.push_str("\n}\n");
    out
}

/// Writes `json` to `name` at the repository root, logging rather than
/// panicking on failure (benches must not die on a read-only checkout).
pub fn write_artifact(name: &str, json: &str) {
    let path = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let path = path.join(name);
    match std::fs::write(&path, json) {
        Ok(()) => println!("{name}: wrote {}", path.display()),
        Err(error) => eprintln!("{name}: cannot write {}: {error}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_wellformed() {
        let json = envelope(
            "demo",
            "a demo artifact",
            &["one caveat"],
            &[("rows", "[\n    { \"x\": 1 }\n  ]".to_string())],
        );
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"machine\": {"));
        assert!(json.contains("\"one caveat\""));
        assert!(json.contains("\"rows\": ["));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the dependency tree.
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    #[should_panic(expected = "caveats")]
    fn empty_caveats_are_rejected() {
        envelope("demo", "d", &[], &[]);
    }
}
