//! CI smoke guards for shared-package racing and warm batch stores.
//!
//! 1. On the tiny acceptance pair (the paper's 3-bit QPE/IQPE example,
//!    forced onto the threaded racing path), the shared-store race must not
//!    be meaningfully slower than racing private per-scheme packages.
//! 2. A batch of three QFT-12 pairs with warm stores (the default) must be
//!    no slower than the same batch on cold per-pair stores, must report
//!    warm hits on every pair after the first, and must reach the same
//!    verdicts as fully private packages.
//!
//! Sub-millisecond races are dominated by thread spawn and cancellation
//! latency, so the guards use minima over several runs and constant slack:
//! they exist to catch *gross* regressions (a serialized store, a lock held
//! across a recursion, a warm store poisoning later pairs), not to referee
//! microsecond noise. The verdict equality checks guard correctness of the
//! shared paths at the same time.

use bench::{build_instance, min_wall_time, Family};
use criterion::{criterion_group, criterion_main, Criterion};
use portfolio::batch::{run_batch, BatchOptions, Manifest, PairSpec};
use portfolio::{applicable_schemes, verify_portfolio, PortfolioConfig};
use std::time::Duration;

fn shared_racing_smoke(_c: &mut Criterion) {
    let instance = build_instance(Family::Qpe, 3);
    let left = &instance.static_circuit;
    let right = &instance.dynamic_circuit;
    // Explicit schemes force the threaded racing path (the tiny-instance
    // fast path would otherwise run sequentially and never share).
    let schemes = applicable_schemes(left, right);
    let shared_config = PortfolioConfig {
        schemes: schemes.clone(),
        ..PortfolioConfig::default()
    };
    let private_config = PortfolioConfig {
        schemes,
        shared_package: false,
        ..PortfolioConfig::default()
    };

    let shared_verdict = verify_portfolio(left, right, &shared_config);
    let private_verdict = verify_portfolio(left, right, &private_config);
    assert_eq!(
        shared_verdict.verdict.considered_equivalent(),
        private_verdict.verdict.considered_equivalent(),
        "shared-store race changed the verdict"
    );
    assert!(
        shared_verdict.shared_store.is_some(),
        "forced race should report shared-store telemetry"
    );

    let runs = 7;
    let shared = min_wall_time(runs, || verify_portfolio(left, right, &shared_config));
    let private = min_wall_time(runs, || verify_portfolio(left, right, &private_config));
    println!(
        "shared_smoke/qpe3: shared {:.3}ms vs private {:.3}ms ({:.2}x)",
        shared.as_secs_f64() * 1e3,
        private.as_secs_f64() * 1e3,
        private.as_secs_f64() / shared.as_secs_f64(),
    );
    // 1.1x + constant slack: epoch-snapshot reads took the per-read lock
    // traffic out of the shared path, so even this sub-millisecond race is
    // held to near-parity (the 50ms floor still absorbs thread-spawn and
    // scheduler jitter on a loaded CI host).
    assert!(
        shared <= private + private / 10 + Duration::from_millis(50),
        "shared-store racing regressed vs private packages: \
         shared {shared:?} vs private {private:?} (lock contention?)"
    );
}

fn warm_store_batch_smoke(_c: &mut Criterion) {
    // Three identical-width QFT-12 pairs (the ISSUE's acceptance workload):
    // warm stores must help, not hurt, and must not change verdicts.
    let instance = build_instance(Family::Qft, 12);
    let dir = std::env::temp_dir().join(format!("warm-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create smoke dir");
    let mut manifest = Manifest {
        pairs: Vec::new(),
        chains: None,
    };
    for i in 0..3 {
        let left = dir.join(format!("qft12_{i}.left.qasm"));
        let right = dir.join(format!("qft12_{i}.right.qasm"));
        std::fs::write(&left, circuit::qasm::to_qasm(&instance.static_circuit)).unwrap();
        std::fs::write(&right, circuit::qasm::to_qasm(&instance.dynamic_circuit)).unwrap();
        manifest.pairs.push(PairSpec {
            name: Some(format!("qft12_{i}")),
            left: left.to_string_lossy().into_owned(),
            right: right.to_string_lossy().into_owned(),
            qubits: None,
        });
    }

    // One worker so the three pairs share one pooled store in order.
    let warm_options = BatchOptions {
        workers: 1,
        ..BatchOptions::default()
    };
    let cold_options = BatchOptions {
        workers: 1,
        warm_stores: false,
        ..BatchOptions::default()
    };
    let private_options = BatchOptions {
        workers: 1,
        portfolio: PortfolioConfig {
            shared_package: false,
            ..PortfolioConfig::default()
        },
        ..BatchOptions::default()
    };

    let warm_report = run_batch(&manifest, &warm_options);
    let private_report = run_batch(&manifest, &private_options);
    for (w, p) in warm_report.pairs.iter().zip(private_report.pairs.iter()) {
        assert_eq!(
            w.verdict, p.verdict,
            "warm stores changed the `{}` verdict vs private packages",
            w.name
        );
    }
    assert!(
        warm_report.warm_hits_total > 0,
        "three same-width pairs must produce warm hits"
    );
    for pair in &warm_report.pairs[1..] {
        let store = pair.shared_store.as_ref().expect("warm store telemetry");
        assert!(
            store.warm_hits > 0,
            "pair `{}` after the first should be warm: {store:?}",
            pair.name
        );
    }

    let runs = 3;
    let warm = min_wall_time(runs, || run_batch(&manifest, &warm_options));
    let cold = min_wall_time(runs, || run_batch(&manifest, &cold_options));
    println!(
        "shared_smoke/warm-qft12: warm {:.3}ms vs cold {:.3}ms ({:.2}x)",
        warm.as_secs_f64() * 1e3,
        cold.as_secs_f64() * 1e3,
        cold.as_secs_f64() / warm.as_secs_f64(),
    );
    assert!(
        warm <= cold + Duration::from_millis(50),
        "warm stores regressed the batch: warm {warm:?} vs cold {cold:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, shared_racing_smoke, warm_store_batch_smoke);
criterion_main!(benches);
