//! CI smoke guard for shared-package racing: on the tiny acceptance pair
//! (the paper's 3-bit QPE/IQPE example, forced onto the threaded racing
//! path), the shared-store race must not be meaningfully slower than racing
//! private per-scheme packages.
//!
//! Sub-millisecond races are dominated by thread spawn and cancellation
//! latency, so the guard uses minima over several runs and a 2x factor plus
//! constant slack: it exists to catch *gross* lock-contention regressions
//! (a serialized store, a lock held across a recursion), not to referee
//! microsecond noise. The verdict equality check guards correctness of the
//! shared path at the same time.

use bench::{build_instance, min_wall_time, Family};
use criterion::{criterion_group, criterion_main, Criterion};
use portfolio::{applicable_schemes, verify_portfolio, PortfolioConfig};
use std::time::Duration;

fn shared_racing_smoke(_c: &mut Criterion) {
    let instance = build_instance(Family::Qpe, 3);
    let left = &instance.static_circuit;
    let right = &instance.dynamic_circuit;
    // Explicit schemes force the threaded racing path (the tiny-instance
    // fast path would otherwise run sequentially and never share).
    let schemes = applicable_schemes(left, right);
    let shared_config = PortfolioConfig {
        schemes: schemes.clone(),
        ..PortfolioConfig::default()
    };
    let private_config = PortfolioConfig {
        schemes,
        shared_package: false,
        ..PortfolioConfig::default()
    };

    let shared_verdict = verify_portfolio(left, right, &shared_config);
    let private_verdict = verify_portfolio(left, right, &private_config);
    assert_eq!(
        shared_verdict.verdict.considered_equivalent(),
        private_verdict.verdict.considered_equivalent(),
        "shared-store race changed the verdict"
    );
    assert!(
        shared_verdict.shared_store.is_some(),
        "forced race should report shared-store telemetry"
    );

    let runs = 7;
    let shared = min_wall_time(runs, || verify_portfolio(left, right, &shared_config));
    let private = min_wall_time(runs, || verify_portfolio(left, right, &private_config));
    println!(
        "shared_smoke/qpe3: shared {:.3}ms vs private {:.3}ms ({:.2}x)",
        shared.as_secs_f64() * 1e3,
        private.as_secs_f64() * 1e3,
        private.as_secs_f64() / shared.as_secs_f64(),
    );
    assert!(
        shared <= private * 2 + Duration::from_millis(50),
        "shared-store racing regressed badly vs private packages: \
         shared {shared:?} vs private {private:?} (lock contention?)"
    );
}

criterion_group!(benches, shared_racing_smoke);
criterion_main!(benches);
