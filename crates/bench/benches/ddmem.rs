//! Memory-managed DD core: peak-node and throughput characteristics.
//!
//! The headline measurement is a repeated-apply QPE-style workload (layers
//! of controlled rotations with fresh angles, so every layer creates new
//! nodes and orphans the previous state): with garbage collection enabled
//! the peak live-node count must stay bounded near the GC threshold, at
//! least 4× below the unbounded no-GC arena. The bench prints both peaks
//! and their ratio, then times the workload in both configurations and the
//! gate-cache effect on a QFT-style rotation sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dd::{gates, Budget, Control, DdPackage, MemoryConfig};

const QUBITS: usize = 10;
const ROUNDS: usize = 40;
const GC_THRESHOLD: usize = 4096;

/// QPE-style repeated application: Hadamard layer, then `ROUNDS` layers of
/// controlled-phase + rotation gates whose angles differ per layer, so no
/// layer's diagram can be reused and the previous state becomes garbage.
fn qpe_like_workload(package: &mut DdPackage) {
    let mut state = package.zero_state();
    for q in 0..QUBITS {
        state = package.apply_gate(state, &gates::h(), q, &[]);
    }
    for round in 0..ROUNDS {
        for q in 1..QUBITS {
            let angle = std::f64::consts::PI / (1.5 + (round * QUBITS + q) as f64);
            state = package.apply_gate(state, &gates::phase(angle), q, &[Control::pos(q - 1)]);
            state = package.apply_gate(state, &gates::ry(angle * 0.7), q, &[]);
        }
    }
    black_box(package.norm_sqr(state));
}

fn package(gc_threshold: Option<usize>) -> DdPackage {
    let config = MemoryConfig {
        gc_threshold,
        ..Default::default()
    };
    DdPackage::with_config(QUBITS, Budget::unlimited(), config)
}

fn bench_gc_peak_nodes(c: &mut Criterion) {
    // One instrumented run per configuration, printed before the timings so
    // the bound shows up in every bench log.
    let mut without_gc = package(None);
    qpe_like_workload(&mut without_gc);
    let peak_without = without_gc.memory_stats().peak_nodes;

    let mut with_gc = package(Some(GC_THRESHOLD));
    qpe_like_workload(&mut with_gc);
    let stats = with_gc.memory_stats();
    let peak_with = stats.peak_nodes;

    println!(
        "ddmem/peak-nodes: no-gc = {peak_without}, gc = {peak_with} \
         ({:.1}x lower, {} collections, {} nodes reclaimed)",
        peak_without as f64 / peak_with as f64,
        stats.gc_runs,
        stats.reclaimed_nodes,
    );
    assert!(
        peak_with * 4 <= peak_without,
        "GC should bound the peak at least 4x below the unbounded arena \
         (no-gc {peak_without} vs gc {peak_with})"
    );

    let mut group = c.benchmark_group("ddmem");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("repeated-apply", "no-gc"), &(), |b, _| {
        b.iter(|| {
            let mut p = package(None);
            qpe_like_workload(&mut p);
        })
    });
    group.bench_with_input(BenchmarkId::new("repeated-apply", "gc"), &(), |b, _| {
        b.iter(|| {
            let mut p = package(Some(GC_THRESHOLD));
            qpe_like_workload(&mut p);
        })
    });
    group.finish();
}

fn bench_gate_cache(c: &mut Criterion) {
    // QFT-style controlled-rotation ladder applied repeatedly: after the
    // first sweep every gate diagram comes from the gate cache.
    let mut group = c.benchmark_group("ddmem_gate_cache");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("qft-sweep", QUBITS), &(), |b, _| {
        let mut package = package(None);
        let mut state = package.zero_state();
        b.iter(|| {
            for j in (0..QUBITS).rev() {
                state = package.apply_gate(state, &gates::h(), j, &[]);
                for k in 0..j {
                    let angle = std::f64::consts::PI / (1u64 << (j - k)) as f64;
                    state = package.apply_gate(state, &gates::phase(angle), j, &[Control::pos(k)]);
                }
            }
            black_box(state)
        });
        let gate = package.gate_cache_counters();
        println!(
            "ddmem/gate-cache: {} lookups, {} hits ({:.1}% hit rate)",
            gate.lookups,
            gate.hits,
            100.0 * gate.hits as f64 / gate.lookups.max(1) as f64,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_gc_peak_nodes, bench_gate_cache);
criterion_main!(benches);
