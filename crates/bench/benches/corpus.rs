//! Chain-vs-endpoint throughput on a generated compilation corpus, emitted
//! as `BENCH_corpus.json`.
//!
//! For each corpus instance the same pipeline is verified twice: in
//! *chain* mode (every adjacent pass pair on one warm store) and in
//! *endpoint* mode (original vs. final circuit only). Both run through
//! `run_batch` with one worker, min-of-7 wall clocks, and the artifact
//! reports per-instance seconds, the headline pairs/sec of each mode, and
//! which families chain mode beat endpoint mode on.
//!
//! The comparison is deliberately asymmetric — chain mode performs every
//! adjacent verification where endpoint mode performs exactly one — so the
//! artifact's caveats spell out what the numbers do and do not mean.

use bench::corpus::{chains_only, endpoint_only, generate, CorpusOptions, Coupling};
use bench::{emit, min_wall_time, Family};
use criterion::{criterion_group, criterion_main, Criterion};
use portfolio::batch::{run_batch, BatchOptions, Manifest};

const RUNS: usize = 7;

fn single_instance(manifest: &Manifest, index: usize) -> (Manifest, Manifest) {
    let chain = Manifest {
        pairs: Vec::new(),
        chains: Some(vec![manifest.chain_specs()[index].clone()]),
    };
    let endpoint = Manifest {
        pairs: vec![manifest.pairs[index].clone()],
        chains: None,
    };
    (chain, endpoint)
}

fn corpus_throughput(_c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("corpus-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // The acceptance workload: structured families incl. QFT-12 (a 4-pass
    // pipeline), compiled onto a line device where routing drifts the
    // endpoints far apart while adjacent snapshots stay near-identical.
    let options = CorpusOptions {
        families: vec![Family::BernsteinVazirani, Family::Qft],
        widths: vec![8, 12],
        couplings: vec![Coupling::Line],
        opt_levels: vec![1],
        measured: false,
    };
    let corpus = generate(&dir, &options).expect("corpus generates");
    // Reload so the manifest's relative paths resolve against the corpus
    // directory, exactly as `verify --manifest` would.
    let manifest =
        portfolio::batch::load_manifest(&corpus.manifest_path).expect("generated manifest loads");
    let batch_options = BatchOptions {
        workers: 1,
        ..BatchOptions::default()
    };

    // Verdict parity before timing anything: a throughput number for a
    // wrong verdict would be meaningless.
    let chain_report = run_batch(&chains_only(&manifest), &batch_options);
    let endpoint_report = run_batch(&endpoint_only(&manifest), &batch_options);
    let mut rows = Vec::new();
    let mut chain_won_families = Vec::new();
    for (index, (chain, pair)) in chain_report
        .chains
        .iter()
        .zip(endpoint_report.pairs.iter())
        .enumerate()
    {
        assert_eq!(
            chain.considered_equivalent, pair.considered_equivalent,
            "`{}`: chain and endpoint mode disagree ({:?} vs {:?})",
            chain.name, chain.verdict, pair.verdict
        );
        assert!(
            chain.considered_equivalent,
            "`{}`: corpus pipeline not equivalent (guilty pass {:?})",
            chain.name, chain.guilty_pass
        );
        assert!(
            chain.chain_hits > 0,
            "`{}`: chain reported no carry-over hits",
            chain.name
        );

        let (chain_manifest, endpoint_manifest) = single_instance(&manifest, index);
        let chain_wall = min_wall_time(RUNS, || run_batch(&chain_manifest, &batch_options));
        let endpoint_wall = min_wall_time(RUNS, || run_batch(&endpoint_manifest, &batch_options));
        println!(
            "corpus/{}: chain {:.3}ms ({} steps, {} carry-over hits) vs endpoint {:.3}ms ({:.2}x)",
            chain.name,
            chain_wall.as_secs_f64() * 1e3,
            chain.steps_verified,
            chain.chain_hits,
            endpoint_wall.as_secs_f64() * 1e3,
            endpoint_wall.as_secs_f64() / chain_wall.as_secs_f64(),
        );
        if chain_wall <= endpoint_wall {
            chain_won_families.push(chain.name.clone());
        }
        rows.push(format!(
            "{{ \"name\": \"{}\", \"steps\": {}, \"chain_seconds\": {:.6}, \
             \"endpoint_seconds\": {:.6}, \"chain_hits\": {}, \"verdict\": \"{:?}\" }}",
            chain.name,
            chain.steps_verified,
            chain_wall.as_secs_f64(),
            endpoint_wall.as_secs_f64(),
            chain.chain_hits,
            chain.verdict,
        ));
    }

    // Headline: whole-corpus throughput of each mode, min-of-RUNS.
    let chain_manifest = chains_only(&manifest);
    let endpoint_manifest = endpoint_only(&manifest);
    let chain_total = min_wall_time(RUNS, || run_batch(&chain_manifest, &batch_options));
    let endpoint_total = min_wall_time(RUNS, || run_batch(&endpoint_manifest, &batch_options));
    let chain_verifications = chain_report.chain_steps_verified;
    let endpoint_verifications = endpoint_report.pairs_total;
    let chain_pps = chain_verifications as f64 / chain_total.as_secs_f64();
    let endpoint_pps = endpoint_verifications as f64 / endpoint_total.as_secs_f64();
    println!(
        "corpus/headline: chain {chain_pps:.2} pairs/sec ({chain_verifications} verifications in \
         {:.3}ms) vs endpoint {endpoint_pps:.2} pairs/sec ({endpoint_verifications} in {:.3}ms)",
        chain_total.as_secs_f64() * 1e3,
        endpoint_total.as_secs_f64() * 1e3,
    );

    let headline = format!(
        "{{ \"chain_pairs_per_sec\": {:.2}, \"endpoint_pairs_per_sec\": {:.2}, \
         \"chain_total_seconds\": {:.6}, \"endpoint_total_seconds\": {:.6}, \
         \"chain_verifications\": {}, \"endpoint_verifications\": {}, \
         \"chain_faster_instances\": [{}] }}",
        chain_pps,
        endpoint_pps,
        chain_total.as_secs_f64(),
        endpoint_total.as_secs_f64(),
        chain_verifications,
        endpoint_verifications,
        chain_won_families
            .iter()
            .map(|name| format!("\"{name}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let json = emit::envelope(
        "corpus",
        "chain-vs-endpoint verification of staged compilations (line-routed BV/QFT at 8 and 12 \
         qubits), min-of-7 wall clocks through run_batch with one worker",
        &[
            "a pairs/sec unit is one adjacent-pair verification: chain mode performs one per \
             pass where endpoint mode performs exactly one per pipeline, so the two throughput \
             numbers count different work and neither alone ranks the modes",
            "chain mode's extra verifications buy blame localisation (a refutation names the \
             guilty pass); endpoint mode only learns that the ends differ",
            "the corpus is compiled by this workspace's own staged compiler, so adjacent \
             snapshots are insertion-aligned near-identity miters — the regime the \
             functional(aligned) gate schedule and chain carry-over were built for; corpora \
             from compilers with global resynthesis passes would blunt both",
            "originals are unmeasured unitaries (the Fig. 1b use case): on measured corpora the \
             distribution-based fixed-input scheme shortcuts the endpoint check and endpoint \
             mode wins wall-clock at these widths",
            "min-of-7 on a shared host; sub-millisecond instances are dominated by service \
             setup and thread spawn, not decision-diagram work",
        ],
        &[
            ("headline", headline),
            ("instances", format!("[\n    {}\n  ]", rows.join(",\n    "))),
        ],
    );
    emit::write_artifact("BENCH_corpus.json", &json);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, corpus_throughput);
criterion_main!(benches);
