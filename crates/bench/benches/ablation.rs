//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * the gate-scheduling strategy of the functional check (reference vs.
//!   1:1 vs. proportional),
//! * zero-branch pruning in the extraction scheme,
//! * sequential vs. parallel extraction.

use bench::{build_instance, Family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcec::{check_functional_equivalence, Configuration, Strategy};
use sim::{extract_distribution, extract_distribution_parallel, ExtractionConfig};
use transform::{align_to_reference, reconstruct_unitary};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/strategy");
    group.sample_size(10);
    let instance = build_instance(Family::Qpe, 11);
    let reconstruction = reconstruct_unitary(&instance.dynamic_circuit).unwrap();
    let aligned = align_to_reference(&instance.static_circuit, &reconstruction.circuit).unwrap();
    for strategy in [
        Strategy::Reference,
        Strategy::OneToOne,
        Strategy::Proportional,
    ] {
        let config = Configuration {
            strategy,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("qpe11", format!("{strategy:?}")),
            &config,
            |b, config| {
                b.iter(|| {
                    check_functional_equivalence(&instance.static_circuit, &aligned, config)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/pruning");
    group.sample_size(10);
    // Sparse instance: pruning collapses the branch tree to a single path.
    let instance = build_instance(Family::BernsteinVazirani, 17);
    for (label, threshold) in [("pruned", 1e-12), ("unpruned", -1.0)] {
        let config = ExtractionConfig {
            prune_threshold: threshold,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("bv17", label), &config, |b, config| {
            b.iter(|| extract_distribution(&instance.dynamic_circuit, config).unwrap())
        });
    }
    group.finish();
}

fn bench_parallel_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/parallel_extraction");
    group.sample_size(10);
    // Dense instance: the branch tree is a full binary tree, so splitting it
    // across threads actually helps.
    let instance = build_instance(Family::Qft, 12);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            extract_distribution(&instance.dynamic_circuit, &ExtractionConfig::default()).unwrap()
        })
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    extract_distribution_parallel(
                        &instance.dynamic_circuit,
                        &ExtractionConfig::default(),
                        threads,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies,
    bench_pruning,
    bench_parallel_extraction
);
criterion_main!(benches);
