//! Table 1, Quantum Phase Estimation section.
//!
//! The functional verification of QPE is the hardest instance family in the
//! paper (`t_ver` grows steeply with the number of counting qubits), while
//! the extraction scheme is nearly free because the output distribution of an
//! exactly representable phase is a single spike.

use bench::{build_instance, Family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcec::{check_functional_equivalence, Configuration};
use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};
use transform::{align_to_reference, reconstruct_unitary};

fn bench_qpe(c: &mut Criterion) {
    let config = Configuration::default();
    let mut group = c.benchmark_group("table1/qpe");
    group.sample_size(10);

    for n in [9usize, 13, 17] {
        let instance = build_instance(Family::Qpe, n);

        group.bench_with_input(BenchmarkId::new("t_trans", n), &instance, |b, inst| {
            b.iter(|| reconstruct_unitary(&inst.dynamic_circuit).unwrap())
        });

        let reconstruction = reconstruct_unitary(&instance.dynamic_circuit).unwrap();
        let aligned =
            align_to_reference(&instance.static_circuit, &reconstruction.circuit).unwrap();
        group.bench_with_input(BenchmarkId::new("t_ver", n), &instance, |b, inst| {
            b.iter(|| {
                check_functional_equivalence(&inst.static_circuit, &aligned, &config).unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("t_extract", n), &instance, |b, inst| {
            b.iter(|| {
                extract_distribution(&inst.dynamic_circuit, &ExtractionConfig::default()).unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("t_sim", n), &instance, |b, inst| {
            b.iter(|| {
                let mut sim = StateVectorSimulator::new(inst.static_circuit.num_qubits());
                sim.run(&inst.static_circuit).unwrap();
                sim
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qpe);
criterion_main!(benches);
