//! Micro-benchmarks of the decision-diagram substrate: gate application,
//! matrix-matrix multiplication and inner products on structured states.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd::{gates, Control, DdPackage};

fn bench_gate_application(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd/apply_gate");
    group.sample_size(20);
    for n in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("ghz_layer", n), &n, |b, &n| {
            b.iter(|| {
                let mut p = DdPackage::new(n);
                let mut state = p.zero_state();
                state = p.apply_gate(state, &gates::h(), 0, &[]);
                for q in 1..n {
                    state = p.apply_gate(state, &gates::x(), q, &[Control::pos(q - 1)]);
                }
                state
            })
        });
    }
    group.finish();
}

fn bench_matrix_multiplication(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd/mul_matrices");
    group.sample_size(20);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("qft_layer", n), &n, |b, &n| {
            b.iter(|| {
                let mut p = DdPackage::new(n);
                let mut u = p.identity();
                for q in 0..n {
                    let h = p.make_gate(&gates::h(), q, &[]);
                    u = p.mul_matrices(h, u);
                    if q + 1 < n {
                        let cp = p.make_gate(
                            &gates::phase(std::f64::consts::PI / 2.0),
                            q + 1,
                            &[Control::pos(q)],
                        );
                        u = p.mul_matrices(cp, u);
                    }
                }
                u
            })
        });
    }
    group.finish();
}

fn bench_inner_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("dd/inner_product");
    group.sample_size(20);
    for n in [32usize, 64, 128] {
        group.bench_with_input(BenchmarkId::new("ghz_overlap", n), &n, |b, &n| {
            let mut p = DdPackage::new(n);
            let mut state = p.zero_state();
            state = p.apply_gate(state, &gates::h(), 0, &[]);
            for q in 1..n {
                state = p.apply_gate(state, &gates::x(), q, &[Control::pos(q - 1)]);
            }
            let zero = p.zero_state();
            b.iter(|| p.fidelity(state, zero))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_application,
    bench_matrix_multiplication,
    bench_inner_product
);
criterion_main!(benches);
