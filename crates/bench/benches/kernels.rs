//! Kernel-layer microbenchmarks and the cross-backend parity smoke.
//!
//! Three measurements, written to `BENCH_kernels.json` at the repository
//! root:
//!
//! * `mul_lanes` — batched SoA complex multiply, runtime-dispatched backend
//!   vs the always-compiled scalar fallback on the same lanes,
//! * `batch_intern` — `ComplexTable::lookup_batch` vs the equivalent
//!   scalar `lookup` loop,
//! * `dense_apply` — a full QFT-10 reference-strategy miter with the dense
//!   terminal-case cutoff at its default (3 levels) vs disabled (0).
//!
//! Before timing anything, the bench *asserts* parity: dispatched kernels
//! must be bit-identical to the scalar fallback, batch interning must
//! produce the same `CIdx` sequence as scalar interning, and the miter
//! verdict must not depend on the dense cutoff. CI runs this bench twice —
//! once with `--features scalar-kernels`, once default — so a backend whose
//! results drift from the fallback fails the build, not just the artifact.

use bench::{emit, min_wall_time};
use dd::kernels;
use dd::{Budget, Complex, ComplexTable, MemoryConfig, TOLERANCE};
use qcec::{check_functional_equivalence_with, Configuration, Equivalence, Strategy};

const LANES: usize = 1024;
const MUL_REPS: usize = 2048;
const INTERN_VALUES: usize = 4096;
const ROUNDS: usize = 21;

/// Interleaved min-of-`ROUNDS` for a dispatched/scalar kernel pair.
///
/// The two bursts alternate inside every round, so load spikes on this
/// (noisy, single-core) machine hit both backends roughly equally instead
/// of biasing whichever ran second; the minima are then comparable.
fn interleaved_min(mut burst: impl FnMut(bool)) -> (f64, f64) {
    let (mut best_d, mut best_s) = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        burst(true);
        best_d = best_d.min(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        burst(false);
        best_s = best_s.min(start.elapsed().as_secs_f64());
    }
    (best_d, best_s)
}

/// Deterministic xorshift64* stream in [-1, 1).
struct Rng(u64);

impl Rng {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        let mantissa = (self.0.wrapping_mul(0x2545F4914F6CDD1D)) >> 11;
        (mantissa as f64 / (1u64 << 52) as f64) * 2.0 - 1.0
    }
}

fn filled(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.next_f64()).collect()
}

/// Panics unless the dispatched kernels are bit-identical to the scalar
/// fallback on `LANES` pseudo-random lanes. This is the CI smoke: run once
/// per backend, it pins AVX2 (or any future backend) to the scalar
/// semantics exactly — same operation order, no FMA contraction.
fn assert_kernel_parity(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64]) {
    let n = ar.len();
    let (mut dr, mut di) = (vec![0.0; n], vec![0.0; n]);
    let (mut sr, mut si) = (vec![0.0; n], vec![0.0; n]);

    kernels::mul_lanes(ar, ai, br, bi, &mut dr, &mut di);
    kernels::mul_lanes_scalar(ar, ai, br, bi, &mut sr, &mut si);
    assert_bits_eq("mul_lanes", &dr, &di, &sr, &si);

    kernels::add_lanes(ar, ai, br, bi, &mut dr, &mut di);
    kernels::add_lanes_scalar(ar, ai, br, bi, &mut sr, &mut si);
    assert_bits_eq("add_lanes", &dr, &di, &sr, &si);

    kernels::div_lanes(ar, ai, br, bi, &mut dr, &mut di);
    kernels::div_lanes_scalar(ar, ai, br, bi, &mut sr, &mut si);
    assert_bits_eq("div_lanes", &dr, &di, &sr, &si);

    kernels::conj_lanes(ar, ai, &mut dr, &mut di);
    kernels::conj_lanes_scalar(ar, ai, &mut sr, &mut si);
    assert_bits_eq("conj_lanes", &dr, &di, &sr, &si);

    let scale = Complex::new(std::f64::consts::FRAC_1_SQRT_2, -0.5);
    dr.copy_from_slice(br);
    di.copy_from_slice(bi);
    sr.copy_from_slice(br);
    si.copy_from_slice(bi);
    kernels::axpy_lanes(&mut dr, &mut di, ar, ai, scale);
    kernels::axpy_lanes_scalar(&mut sr, &mut si, ar, ai, scale);
    assert_bits_eq("axpy_lanes", &dr, &di, &sr, &si);

    let dot = kernels::dot_conj_lanes(ar, ai, br, bi);
    let dot_scalar = kernels::dot_conj_lanes_scalar(ar, ai, br, bi);
    assert!(
        dot.re.to_bits() == dot_scalar.re.to_bits() && dot.im.to_bits() == dot_scalar.im.to_bits(),
        "dot_conj_lanes: dispatched {dot:?} != scalar {dot_scalar:?}"
    );

    println!(
        "kernel parity: {} backend bit-identical to scalar on {n} lanes",
        kernels::backend().name()
    );
}

fn assert_bits_eq(kernel: &str, dr: &[f64], di: &[f64], sr: &[f64], si: &[f64]) {
    for i in 0..dr.len() {
        assert!(
            dr[i].to_bits() == sr[i].to_bits() && di[i].to_bits() == si[i].to_bits(),
            "{kernel}: lane {i} dispatched ({}, {}) != scalar ({}, {})",
            dr[i],
            di[i],
            sr[i],
            si[i]
        );
    }
}

/// Panics unless `lookup_batch` interned exactly the same `CIdx` sequence
/// as scalar `lookup` on a stream mixing random values with near-bucket-
/// boundary jitters (the adversarial zone for the 9-bucket probe).
fn assert_intern_parity(values: &[Complex]) {
    let mut scalar_table = ComplexTable::new();
    let scalar: Vec<_> = values.iter().map(|&v| scalar_table.lookup(v)).collect();
    let mut batch_table = ComplexTable::new();
    let mut batch = Vec::new();
    batch_table.lookup_batch(values, &mut batch);
    assert_eq!(
        scalar, batch,
        "lookup_batch interned a different CIdx sequence than scalar lookup"
    );
    assert_eq!(scalar_table.len(), batch_table.len());
    println!(
        "intern parity: batch and scalar interning agree on {} values",
        values.len()
    );
}

fn intern_stream(rng: &mut Rng) -> Vec<Complex> {
    (0..INTERN_VALUES)
        .map(|i| {
            let base = Complex::new(rng.next_f64(), rng.next_f64());
            match i % 4 {
                // Every fourth value sits within a fraction of the merge
                // tolerance of an earlier bucket corner.
                0 => Complex::new(
                    0.5 + (i % 7) as f64 * 0.3 * TOLERANCE,
                    0.25 - (i % 5) as f64 * 0.3 * TOLERANCE,
                ),
                _ => base,
            }
        })
        .collect()
}

fn dense_apply_secs(cutoff: u32) -> (f64, Equivalence) {
    let circuit = algorithms::qft::qft_static(10, None, false);
    let config = Configuration {
        strategy: Strategy::Reference,
        memory: MemoryConfig {
            dense_cutoff: cutoff,
            ..MemoryConfig::default()
        },
        ..Configuration::default()
    };
    let check = || {
        check_functional_equivalence_with(&circuit, &circuit, &config, &Budget::unlimited())
            .expect("qft-10 reference miter fits in memory")
            .equivalence
    };
    let verdict = check();
    let secs = min_wall_time(3, check).as_secs_f64();
    (secs, verdict)
}

fn main() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    let ar = filled(&mut rng, LANES);
    let ai = filled(&mut rng, LANES);
    let br = filled(&mut rng, LANES);
    let bi = filled(&mut rng, LANES);

    // Parity smokes first: no point timing a wrong kernel.
    assert_kernel_parity(&ar, &ai, &br, &bi);
    assert_intern_parity(&intern_stream(&mut rng));

    // mul_lanes: dispatched backend vs scalar fallback on identical lanes.
    let (mut or, mut oi) = (vec![0.0; LANES], vec![0.0; LANES]);
    let (mul_secs, mul_scalar_secs) = interleaved_min(|dispatched| {
        for _ in 0..MUL_REPS {
            if dispatched {
                kernels::mul_lanes(&ar, &ai, &br, &bi, &mut or, &mut oi);
            } else {
                kernels::mul_lanes_scalar(&ar, &ai, &br, &bi, &mut or, &mut oi);
            }
        }
    });

    // dot_conj: the fidelity inner product — a reduction, so the scalar
    // fallback cannot autovectorize it (strict FP summation order) and the
    // explicit 4-accumulator AVX2 kernel shows the full SIMD headroom.
    let (dot_secs, dot_scalar_secs) = interleaved_min(|dispatched| {
        for _ in 0..MUL_REPS {
            std::hint::black_box(if dispatched {
                kernels::dot_conj_lanes(&ar, &ai, &br, &bi)
            } else {
                kernels::dot_conj_lanes_scalar(&ar, &ai, &br, &bi)
            });
        }
    });

    // batch interning vs a scalar lookup loop on the adversarial stream.
    let stream = intern_stream(&mut rng);
    let mut idxs = Vec::new();
    let (batch_secs, batch_scalar_secs) = interleaved_min(|dispatched| {
        let mut table = ComplexTable::new();
        if dispatched {
            idxs.clear();
            table.lookup_batch(&stream, &mut idxs);
        } else {
            for &v in &stream {
                std::hint::black_box(table.lookup(v));
            }
        }
    });

    // Dense terminal-case apply: QFT-10 reference miter, default cutoff vs
    // dense path disabled. Same verdict required.
    let (dense_secs, dense_verdict) = dense_apply_secs(3);
    let (recursive_secs, recursive_verdict) = dense_apply_secs(0);
    assert_eq!(
        dense_verdict, recursive_verdict,
        "dense cutoff changed the miter verdict"
    );

    let backend = kernels::backend().name();
    println!(
        "mul_lanes[{backend}]: {:.3}ms vs scalar {:.3}ms ({:.2}x) on {LANES} lanes x {MUL_REPS}",
        mul_secs * 1e3,
        mul_scalar_secs * 1e3,
        mul_scalar_secs / mul_secs
    );
    println!(
        "dot_conj_lanes[{backend}]: {:.3}ms vs scalar {:.3}ms ({:.2}x) on {LANES} lanes x {MUL_REPS}",
        dot_secs * 1e3,
        dot_scalar_secs * 1e3,
        dot_scalar_secs / dot_secs
    );
    println!(
        "batch_intern[{backend}]: {:.3}ms vs scalar {:.3}ms ({:.2}x) on {INTERN_VALUES} values",
        batch_secs * 1e3,
        batch_scalar_secs * 1e3,
        batch_scalar_secs / batch_secs
    );
    println!(
        "dense_apply[{backend}]: cutoff 3 {:.3}s vs cutoff 0 {:.3}s ({:.2}x) on qft-10 reference",
        dense_secs,
        recursive_secs,
        recursive_secs / dense_secs
    );

    let kernel_rows = [
        format!(
            "    {{ \"kernel\": \"mul_lanes\", \"backend\": \"{backend}\", \
             \"lanes\": {LANES}, \"reps\": {MUL_REPS}, \"secs\": {mul_secs:.6}, \
             \"scalar_secs\": {mul_scalar_secs:.6}, \"speedup\": {:.4} }}",
            mul_scalar_secs / mul_secs
        ),
        format!(
            "    {{ \"kernel\": \"dot_conj_lanes\", \"backend\": \"{backend}\", \
             \"lanes\": {LANES}, \"reps\": {MUL_REPS}, \"secs\": {dot_secs:.6}, \
             \"scalar_secs\": {dot_scalar_secs:.6}, \"speedup\": {:.4} }}",
            dot_scalar_secs / dot_secs
        ),
        format!(
            "    {{ \"kernel\": \"batch_intern\", \"backend\": \"{backend}\", \
             \"values\": {INTERN_VALUES}, \"secs\": {batch_secs:.6}, \
             \"scalar_secs\": {batch_scalar_secs:.6}, \"speedup\": {:.4} }}",
            batch_scalar_secs / batch_secs
        ),
        format!(
            "    {{ \"kernel\": \"dense_apply\", \"backend\": \"{backend}\", \
             \"instance\": \"qft-10 reference miter\", \"cutoff\": 3, \
             \"secs\": {dense_secs:.6}, \"scalar_secs\": {recursive_secs:.6}, \
             \"speedup\": {:.4} }}",
            recursive_secs / dense_secs
        ),
    ];
    let json = emit::envelope(
        "kernels",
        "SoA kernel microbenchmarks: dispatched backend vs scalar fallback (interleaved \
         min-of-21), and the dense terminal-case miter (min-of-3)",
        &[
            "single machine, min-of-N wall times: cross-machine comparisons are meaningless, \
             same-machine ratios are the signal",
            "mul_lanes compares AVX2 dispatch to the *autovectorized* scalar fallback and is \
             store-port-bound, so its ratio is small and honest; dot_conj_lanes is where the \
             SIMD headroom shows, because strict FP summation order keeps the scalar reduction \
             from autovectorizing",
            "dense_apply 'scalar_secs' is the recursive path (cutoff 0), same backend: it \
             measures the dense rewrite, not SIMD width — on structured miters the memoized \
             recursion wins and the ratio is below 1",
            "batch_intern times a cold table per run; warm-table batches hit the memo layer \
             and look faster",
        ],
        &[("kernels", format!("[\n{}\n  ]", kernel_rows.join(",\n")))],
    );
    emit::write_artifact("BENCH_kernels.json", &json);
}
