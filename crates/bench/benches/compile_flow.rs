//! Benchmarks of the compilation flow and the subsequent verification of the
//! compilation result (the use case of the paper's Section 2.3).

use bench::{build_instance, Family};
use compile::{Compiler, CouplingMap, NativeBasis, Target};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcec::{check_functional_equivalence, Configuration};

fn line_target(n: usize) -> Target {
    Target {
        coupling: CouplingMap::line(n),
        basis: NativeBasis::IbmRzSxX,
    }
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile/pipeline");
    group.sample_size(10);
    for n in [6usize, 10, 14] {
        let instance = build_instance(Family::Qft, n);
        let circuit = instance.static_circuit.without_measurements();
        group.bench_with_input(BenchmarkId::new("qft", n), &circuit, |b, circuit| {
            let compiler = Compiler::new(line_target(circuit.num_qubits()));
            b.iter(|| compiler.compile(circuit).unwrap())
        });
    }
    group.finish();
}

fn bench_compile_and_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile/verify");
    group.sample_size(10);
    for n in [5usize, 7, 9] {
        let instance = build_instance(Family::Qpe, n);
        let circuit = instance.static_circuit.without_measurements();
        let compiled = Compiler::new(line_target(circuit.num_qubits()))
            .compile(&circuit)
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("qpe", n),
            &(circuit, compiled.circuit),
            |b, (original, compiled)| {
                b.iter(|| {
                    check_functional_equivalence(original, compiled, &Configuration::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_compile_and_verify);
criterion_main!(benches);
