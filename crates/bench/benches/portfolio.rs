//! Portfolio speedup on QPE/IQPE instances.
//!
//! Compares the wall time of the parallel portfolio against each single
//! scheme run alone, on the paper's hardest family (phase estimation, static
//! vs. iterative-dynamic). The portfolio should track the fastest scheme per
//! instance — that is the whole point of racing them — while a fixed single
//! scheme is sometimes the slow one.
//!
//! The `portfolio_shared` group additionally races the shared
//! decision-diagram store against private per-scheme packages on the
//! QPE/IQPE miters and records the comparison (wall times, cross-thread hit
//! rates, peak nodes) in `BENCH_shared.json` at the repository root, so the
//! shared-package perf trajectory is tracked across PRs.

use bench::{build_instance, min_wall_time, Family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd::Budget;
use portfolio::{run_scheme, verify_portfolio, PortfolioConfig, Scheme};
use qcec::Strategy;

fn bench_portfolio_vs_single_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    for n in [7usize, 9, 11] {
        let instance = build_instance(Family::Qpe, n);
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        let config = PortfolioConfig::default();

        group.bench_with_input(BenchmarkId::new("race", n), &n, |b, _| {
            b.iter(|| verify_portfolio(static_circuit, dynamic_circuit, &config))
        });
        for scheme in [
            Scheme::DynamicFunctional(Strategy::Proportional),
            Scheme::DynamicFunctional(Strategy::Reference),
            Scheme::FixedInput,
        ] {
            group.bench_with_input(BenchmarkId::new(scheme.name(), n), &n, |b, _| {
                b.iter(|| {
                    run_scheme(
                        scheme,
                        static_circuit,
                        dynamic_circuit,
                        &config,
                        &Budget::unlimited(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    // Pair-level fan-out: a three-pair QPE workload raced concurrently, the
    // shape the batch driver produces (file I/O excluded — circuits are
    // prebuilt).
    let mut group = c.benchmark_group("portfolio_batch");
    group.sample_size(10);
    let instances: Vec<_> = [7usize, 8, 9]
        .iter()
        .map(|&n| build_instance(Family::Qpe, n))
        .collect();
    let config = PortfolioConfig::default();
    group.bench_with_input(BenchmarkId::new("qpe_three_pairs", "7-9"), &(), |b, _| {
        b.iter(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = instances
                    .iter()
                    .map(|instance| {
                        let config = &config;
                        scope.spawn(move || {
                            verify_portfolio(
                                &instance.static_circuit,
                                &instance.dynamic_circuit,
                                config,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("portfolio worker panicked"))
                    .collect::<Vec<_>>()
            })
        })
    });
    group.finish();
}

fn bench_shared_vs_private(c: &mut Criterion) {
    let mut rows = Vec::new();
    for n in [7usize, 9, 11] {
        let instance = build_instance(Family::Qpe, n);
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        // Explicit schemes force the threaded racing path even for the
        // smallest instance (the sequential fast path never shares).
        let schemes = portfolio::applicable_schemes(static_circuit, dynamic_circuit);
        let shared_config = PortfolioConfig {
            schemes: schemes.clone(),
            ..PortfolioConfig::default()
        };
        let private_config = PortfolioConfig {
            schemes,
            shared_package: false,
            ..PortfolioConfig::default()
        };

        // One instrumented run for the sharing telemetry, then timed runs.
        let instrumented = verify_portfolio(static_circuit, dynamic_circuit, &shared_config);
        let store = instrumented
            .shared_store
            .expect("non-tiny race uses the shared store");
        let shared_secs = min_wall_time(3, || {
            verify_portfolio(static_circuit, dynamic_circuit, &shared_config)
        })
        .as_secs_f64();
        let private_secs = min_wall_time(3, || {
            verify_portfolio(static_circuit, dynamic_circuit, &private_config)
        })
        .as_secs_f64();
        println!(
            "portfolio_shared/qpe/{n}: shared {shared_secs:.3}s vs private {private_secs:.3}s \
             ({:.2}x), cross-thread hit rate {:.1}%, peak {} nodes, winner {}",
            private_secs / shared_secs,
            100.0 * store.cross_thread_hit_rate,
            store.peak_nodes,
            instrumented
                .winner
                .map(|s| s.name())
                .unwrap_or_else(|| "-".into()),
        );
        rows.push(format!(
            "    {{ \"family\": \"qpe\", \"n\": {n}, \"shared_secs\": {shared_secs:.6}, \
             \"private_secs\": {private_secs:.6}, \"speedup\": {:.4}, \
             \"cross_thread_hit_rate\": {:.6}, \"cross_thread_hits\": {}, \
             \"shared_peak_nodes\": {}, \"shared_allocated_nodes\": {}, \"winner\": \"{}\" }}",
            private_secs / shared_secs,
            store.cross_thread_hit_rate,
            store.cross_thread_hits,
            store.peak_nodes,
            store.allocated_nodes,
            instrumented
                .winner
                .map(|s| s.name())
                .unwrap_or_else(|| "-".into()),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"portfolio_shared\",\n  \"description\": \"shared-store vs \
         private-package portfolio races on QPE/IQPE miters (min of 3 runs)\",\n  \
         \"instances\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shared.json");
    if let Err(error) = std::fs::write(path, &json) {
        eprintln!("portfolio_shared: cannot write {path}: {error}");
    } else {
        println!("portfolio_shared: wrote {path}");
    }

    // Criterion timings for the grep-friendly log (smaller sample budget:
    // the explicit min-of-3 above is the recorded comparison).
    let mut group = c.benchmark_group("portfolio_shared");
    group.sample_size(10);
    for n in [7usize, 9] {
        let instance = build_instance(Family::Qpe, n);
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        let schemes = portfolio::applicable_schemes(static_circuit, dynamic_circuit);
        let shared_config = PortfolioConfig {
            schemes: schemes.clone(),
            ..PortfolioConfig::default()
        };
        let private_config = PortfolioConfig {
            schemes,
            shared_package: false,
            ..PortfolioConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("shared", n), &n, |b, _| {
            b.iter(|| verify_portfolio(static_circuit, dynamic_circuit, &shared_config))
        });
        group.bench_with_input(BenchmarkId::new("private", n), &n, |b, _| {
            b.iter(|| verify_portfolio(static_circuit, dynamic_circuit, &private_config))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_portfolio_vs_single_schemes,
    bench_batch_throughput,
    bench_shared_vs_private
);
criterion_main!(benches);
