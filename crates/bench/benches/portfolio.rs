//! Portfolio speedup on QPE/IQPE instances.
//!
//! Compares the wall time of the parallel portfolio against each single
//! scheme run alone, on the paper's hardest family (phase estimation, static
//! vs. iterative-dynamic). The portfolio should track the fastest scheme per
//! instance — that is the whole point of racing them — while a fixed single
//! scheme is sometimes the slow one.

use bench::{build_instance, Family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd::Budget;
use portfolio::{run_scheme, verify_portfolio, PortfolioConfig, Scheme};
use qcec::Strategy;

fn bench_portfolio_vs_single_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    for n in [7usize, 9, 11] {
        let instance = build_instance(Family::Qpe, n);
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        let config = PortfolioConfig::default();

        group.bench_with_input(BenchmarkId::new("race", n), &n, |b, _| {
            b.iter(|| verify_portfolio(static_circuit, dynamic_circuit, &config))
        });
        for scheme in [
            Scheme::DynamicFunctional(Strategy::Proportional),
            Scheme::DynamicFunctional(Strategy::Reference),
            Scheme::FixedInput,
        ] {
            group.bench_with_input(BenchmarkId::new(scheme.name(), n), &n, |b, _| {
                b.iter(|| {
                    run_scheme(
                        scheme,
                        static_circuit,
                        dynamic_circuit,
                        &config,
                        &Budget::unlimited(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    // Pair-level fan-out: a three-pair QPE workload raced concurrently, the
    // shape the batch driver produces (file I/O excluded — circuits are
    // prebuilt).
    let mut group = c.benchmark_group("portfolio_batch");
    group.sample_size(10);
    let instances: Vec<_> = [7usize, 8, 9]
        .iter()
        .map(|&n| build_instance(Family::Qpe, n))
        .collect();
    let config = PortfolioConfig::default();
    group.bench_with_input(BenchmarkId::new("qpe_three_pairs", "7-9"), &(), |b, _| {
        b.iter(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = instances
                    .iter()
                    .map(|instance| {
                        let config = &config;
                        scope.spawn(move || {
                            verify_portfolio(
                                &instance.static_circuit,
                                &instance.dynamic_circuit,
                                config,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("portfolio worker panicked"))
                    .collect::<Vec<_>>()
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_portfolio_vs_single_schemes,
    bench_batch_throughput
);
criterion_main!(benches);
