//! Portfolio speedup on QPE/IQPE instances.
//!
//! Compares the wall time of the parallel portfolio against each single
//! scheme run alone, on the paper's hardest family (phase estimation, static
//! vs. iterative-dynamic). The portfolio should track the fastest scheme per
//! instance — that is the whole point of racing them — while a fixed single
//! scheme is sometimes the slow one.
//!
//! The `portfolio_shared` group additionally races the shared
//! decision-diagram store against private per-scheme packages on the
//! QPE/IQPE miters and records the comparison (wall times, cross-thread hit
//! rates, peak nodes) in `BENCH_shared.json` at the repository root, so the
//! shared-package perf trajectory is tracked across PRs.
//!
//! The `portfolio_scheduler` group compares the telemetry-driven
//! *predicted* launch policy against racing everything on a QFT/QPE
//! workload and records the comparison (wall times, scheme launches,
//! verdicts) in `BENCH_scheduler.json`. It doubles as the CI scheduler
//! smoke: with cold stats the predicted policy must degrade to exact race
//! parity, and with stats warmed by one pass over the same workload it must
//! launch strictly fewer schemes with identical verdicts.

use bench::{build_instance, min_wall_time, Family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd::Budget;
use portfolio::telemetry::TelemetryStore;
use portfolio::{
    run_scheme, verify_portfolio, verify_portfolio_recorded, PortfolioConfig, SchedulePolicy,
    Scheme,
};
use qcec::Strategy;
use std::sync::Mutex;

fn bench_portfolio_vs_single_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    for n in [7usize, 9, 11] {
        let instance = build_instance(Family::Qpe, n);
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        let config = PortfolioConfig::default();

        group.bench_with_input(BenchmarkId::new("race", n), &n, |b, _| {
            b.iter(|| verify_portfolio(static_circuit, dynamic_circuit, &config))
        });
        for scheme in [
            Scheme::DynamicFunctional(Strategy::Proportional),
            Scheme::DynamicFunctional(Strategy::Reference),
            Scheme::FixedInput,
        ] {
            group.bench_with_input(BenchmarkId::new(scheme.name(), n), &n, |b, _| {
                b.iter(|| {
                    run_scheme(
                        scheme,
                        static_circuit,
                        dynamic_circuit,
                        &config,
                        &Budget::unlimited(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    // Pair-level fan-out: a three-pair QPE workload raced concurrently, the
    // shape the batch driver produces (file I/O excluded — circuits are
    // prebuilt).
    let mut group = c.benchmark_group("portfolio_batch");
    group.sample_size(10);
    let instances: Vec<_> = [7usize, 8, 9]
        .iter()
        .map(|&n| build_instance(Family::Qpe, n))
        .collect();
    let config = PortfolioConfig::default();
    group.bench_with_input(BenchmarkId::new("qpe_three_pairs", "7-9"), &(), |b, _| {
        b.iter(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = instances
                    .iter()
                    .map(|instance| {
                        let config = &config;
                        scope.spawn(move || {
                            verify_portfolio(
                                &instance.static_circuit,
                                &instance.dynamic_circuit,
                                config,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("portfolio worker panicked"))
                    .collect::<Vec<_>>()
            })
        })
    });
    group.finish();
}

/// Mirrors the vendored criterion's CLI filter for the *bodies* of benches
/// with side effects (instrumented comparison runs, `BENCH_*.json` writes):
/// criterion only filters the registered timing loops, so without this a
/// `cargo bench --bench portfolio -- portfolio_scheduler` run would still
/// execute every other group's comparison work and rewrite its checked-in
/// JSON with timing noise.
fn group_selected(name: &str) -> bool {
    match std::env::args().skip(1).find(|arg| !arg.starts_with('-')) {
        Some(filter) => name.contains(filter.as_str()),
        None => true,
    }
}

fn bench_shared_vs_private(c: &mut Criterion) {
    if !group_selected("portfolio_shared") {
        return;
    }
    let mut rows = Vec::new();
    for (family, n) in [
        (Family::Qpe, 7usize),
        (Family::Qpe, 9),
        (Family::Qpe, 11),
        (Family::Qft, 12),
    ] {
        let instance = build_instance(family, n);
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        // Explicit schemes force the threaded racing path even for the
        // smallest instance (the sequential fast path never shares).
        let schemes = portfolio::applicable_schemes(static_circuit, dynamic_circuit);
        let shared_config = PortfolioConfig {
            schemes: schemes.clone(),
            ..PortfolioConfig::default()
        };
        let private_config = PortfolioConfig {
            schemes,
            shared_package: false,
            ..PortfolioConfig::default()
        };

        // One instrumented run for the sharing telemetry, then timed runs.
        let instrumented = verify_portfolio(static_circuit, dynamic_circuit, &shared_config);
        let store = instrumented
            .shared_store
            .expect("non-tiny race uses the shared store");
        let shared_secs = min_wall_time(7, || {
            verify_portfolio(static_circuit, dynamic_circuit, &shared_config)
        })
        .as_secs_f64();
        let private_secs = min_wall_time(7, || {
            verify_portfolio(static_circuit, dynamic_circuit, &private_config)
        })
        .as_secs_f64();
        let family_name = instance.family.name();
        println!(
            "portfolio_shared/{family_name}/{n}: shared {shared_secs:.3}s vs private \
             {private_secs:.3}s ({:.2}x), cross-thread hit rate {:.1}%, peak {} nodes, \
             contention {:.6}s, winner {}",
            private_secs / shared_secs,
            100.0 * store.cross_thread_hit_rate,
            store.peak_nodes,
            store.shard_contention_seconds,
            instrumented.winner.map(|s| s.name()).unwrap_or("-"),
        );
        rows.push(format!(
            "    {{ \"family\": \"{family_name}\", \"n\": {n}, \"shared_secs\": \
             {shared_secs:.6}, \"private_secs\": {private_secs:.6}, \"speedup\": {:.4}, \
             \"cross_thread_hit_rate\": {:.6}, \"cross_thread_hits\": {}, \
             \"shared_peak_nodes\": {}, \"shared_allocated_nodes\": {}, \
             \"shard_contention_seconds\": {:.6}, \"mirror_invalidations\": {}, \
             \"epoch_pins\": {}, \"retired_generations\": {}, \"winner\": \"{}\" }}",
            private_secs / shared_secs,
            store.cross_thread_hit_rate,
            store.cross_thread_hits,
            store.peak_nodes,
            store.allocated_nodes,
            store.shard_contention_seconds,
            store.mirror_invalidations,
            store.epoch_pins,
            store.retired_generations,
            instrumented.winner.map(|s| s.name()).unwrap_or("-"),
        ));
    }

    let json = bench::emit::envelope(
        "portfolio_shared",
        "shared-store vs private-package portfolio races on QPE/IQPE and QFT miters (min of 7 \
         runs)",
        &[
            "small n: four instances, min-of-7 wall times on one machine — \
             treat speedups within ~1.3x of parity as noise, not signal",
            "cross_thread_hit_rate counts canonical-store hits only; compute-table reuse is \
             invisible here, so low rates do not mean no sharing",
            "shared_peak_nodes is a store-lifetime gauge, not a per-race delta: a warm store \
             inflates it",
            "contention/invalidation counters come from the single instrumented run, not the \
             timed min-of-7 — one barrier landing differently can move them",
        ],
        &[("instances", format!("[\n{}\n  ]", rows.join(",\n")))],
    );
    bench::emit::write_artifact("BENCH_shared.json", &json);

    // Criterion timings for the grep-friendly log (smaller sample budget:
    // the explicit min-of-7 above is the recorded comparison).
    let mut group = c.benchmark_group("portfolio_shared");
    group.sample_size(10);
    for n in [7usize, 9] {
        let instance = build_instance(Family::Qpe, n);
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        let schemes = portfolio::applicable_schemes(static_circuit, dynamic_circuit);
        let shared_config = PortfolioConfig {
            schemes: schemes.clone(),
            ..PortfolioConfig::default()
        };
        let private_config = PortfolioConfig {
            schemes,
            shared_package: false,
            ..PortfolioConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("shared", n), &n, |b, _| {
            b.iter(|| verify_portfolio(static_circuit, dynamic_circuit, &shared_config))
        });
        group.bench_with_input(BenchmarkId::new("private", n), &n, |b, _| {
            b.iter(|| verify_portfolio(static_circuit, dynamic_circuit, &private_config))
        });
    }
    group.finish();
}

fn bench_predicted_vs_race(c: &mut Criterion) {
    if !group_selected("portfolio_scheduler") {
        return;
    }
    // The acceptance workload: non-tiny QFT and QPE instances (tiny pairs
    // take the sequential plan, which already stops at the first conclusive
    // scheme — launch counts only differ on the threaded path).
    let instances: Vec<_> = [(Family::Qpe, 7), (Family::Qpe, 9), (Family::Qft, 10)]
        .iter()
        .map(|&(family, n)| build_instance(family, n))
        .collect();
    let race_config = PortfolioConfig::default();
    let predicted_config = PortfolioConfig {
        policy: SchedulePolicy::predicted(),
        ..PortfolioConfig::default()
    };

    // Phase 1 — cold stats: the predicted policy must degrade to exact
    // race-everything behaviour (same verdicts, same launch counts, no
    // prediction flag). Each pair gets a *fresh* empty store for the cold
    // check (the feature buckets are deliberately coarse, so recording one
    // pair can legitimately warm another's bucket); the race pass records
    // into the store the warm phase uses.
    let warm_stats = Mutex::new(TelemetryStore::new());
    for instance in &instances {
        let race = verify_portfolio_recorded(
            &instance.static_circuit,
            &instance.dynamic_circuit,
            &race_config,
            None,
            Some(&warm_stats),
        );
        let fresh = Mutex::new(TelemetryStore::new());
        let cold = verify_portfolio_recorded(
            &instance.static_circuit,
            &instance.dynamic_circuit,
            &predicted_config,
            None,
            Some(&fresh),
        );
        assert!(
            !cold.predicted,
            "{}/{}: cold stats must not steer the plan",
            instance.family.name(),
            instance.n
        );
        assert_eq!(
            cold.verdict.considered_equivalent(),
            race.verdict.considered_equivalent(),
            "{}/{}: cold predicted changed the verdict",
            instance.family.name(),
            instance.n
        );
        assert_eq!(
            cold.schemes.len(),
            race.schemes.len(),
            "{}/{}: cold predicted changed the launch count",
            instance.family.name(),
            instance.n
        );
    }

    // Phase 2 — the cold pass above already warmed the store (one recorded
    // race per pair). Re-verify predictively: identical verdicts, strictly
    // fewer scheme launches across the workload.
    let mut rows = Vec::new();
    let mut race_launches_total = 0usize;
    let mut predicted_launches_total = 0usize;
    for instance in &instances {
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        let race = verify_portfolio(static_circuit, dynamic_circuit, &race_config);
        let predicted = verify_portfolio_recorded(
            static_circuit,
            dynamic_circuit,
            &predicted_config,
            None,
            Some(&warm_stats),
        );
        assert!(
            predicted.predicted,
            "{}/{}: warm stats must steer the plan",
            instance.family.name(),
            instance.n
        );
        assert_eq!(
            predicted.verdict.considered_equivalent(),
            race.verdict.considered_equivalent(),
            "{}/{}: prediction changed the verdict",
            instance.family.name(),
            instance.n
        );
        race_launches_total += race.schemes.len();
        predicted_launches_total += predicted.schemes.len();

        let race_secs = min_wall_time(3, || {
            verify_portfolio(static_circuit, dynamic_circuit, &race_config)
        })
        .as_secs_f64();
        let predicted_secs = min_wall_time(3, || {
            verify_portfolio_recorded(
                static_circuit,
                dynamic_circuit,
                &predicted_config,
                None,
                Some(&warm_stats),
            )
        })
        .as_secs_f64();
        println!(
            "portfolio_scheduler/{}/{}: predicted {:.3}ms ({} launches{}) vs race {:.3}ms ({} \
             launches), winner {}",
            instance.family.name(),
            instance.n,
            predicted_secs * 1e3,
            predicted.schemes.len(),
            match predicted.escalation {
                Some(reason) => format!(", escalated: {reason}"),
                None => String::new(),
            },
            race_secs * 1e3,
            race.schemes.len(),
            predicted.winner.map(|s| s.name()).unwrap_or("-"),
        );
        rows.push(format!(
            "    {{ \"family\": \"{}\", \"n\": {}, \"race_secs\": {race_secs:.6}, \
             \"predicted_secs\": {predicted_secs:.6}, \"race_launches\": {}, \
             \"predicted_launches\": {}, \"escalation\": {}, \"verdict_equivalent\": {}, \
             \"winner\": \"{}\" }}",
            instance.family.name(),
            instance.n,
            race.schemes.len(),
            predicted.schemes.len(),
            predicted
                .escalation
                .map(|reason| format!("\"{reason}\""))
                .unwrap_or_else(|| "null".to_string()),
            predicted.verdict.considered_equivalent(),
            predicted.winner.map(|s| s.name()).unwrap_or("-"),
        ));
    }
    assert!(
        predicted_launches_total < race_launches_total,
        "warm prediction must launch strictly fewer schemes: {predicted_launches_total} vs \
         {race_launches_total}"
    );

    let json = format!(
        "{{\n  \"bench\": \"portfolio_scheduler\",\n  \"description\": \"telemetry-predicted \
         top-k launches vs race-everything on QFT/QPE pairs (min of 3 runs; stats warmed by one \
         recorded race per pair)\",\n  \"caveats\": [\n    \"small n: three pairs on one \
         machine — the launch-count saving generalises, the wall-time ratios may not\",\n    \
         \"stats are warmed by exactly one recorded race per pair; a long-lived store sees \
         noisier history and predicts worse\",\n    \"escalation reasons (stall vs \
         inconclusive-drain) depend on host scheduling and can flip between runs under load\"\n  \
         ],\n  \"race_launches_total\": {race_launches_total},\n  \
         \"predicted_launches_total\": {predicted_launches_total},\n  \"instances\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scheduler.json");
    if let Err(error) = std::fs::write(path, &json) {
        eprintln!("portfolio_scheduler: cannot write {path}: {error}");
    } else {
        println!("portfolio_scheduler: wrote {path}");
    }

    // Criterion timings for the grep-friendly log.
    let mut group = c.benchmark_group("portfolio_scheduler");
    group.sample_size(10);
    for (label, config) in [("race", &race_config), ("predicted", &predicted_config)] {
        let instance = &instances[1]; // QPE 9
        let static_circuit = &instance.static_circuit;
        let dynamic_circuit = &instance.dynamic_circuit;
        group.bench_with_input(BenchmarkId::new(label, instance.n), &(), |b, _| {
            b.iter(|| {
                verify_portfolio_recorded(
                    static_circuit,
                    dynamic_circuit,
                    config,
                    None,
                    Some(&warm_stats),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_portfolio_vs_single_schemes,
    bench_batch_throughput,
    bench_shared_vs_private,
    bench_predicted_vs_race
);
criterion_main!(benches);
