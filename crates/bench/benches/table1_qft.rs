//! Table 1, Quantum Fourier Transform section.
//!
//! The functional verification scales to large registers; the extraction
//! scheme doubles its work with every added qubit (dense output
//! distribution), which is exactly the behaviour Table 1 reports. The bench
//! therefore uses small sizes for `t_extract` and larger ones for `t_ver`.

use bench::{build_instance, Family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcec::{check_functional_equivalence, Configuration};
use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};
use transform::{align_to_reference, reconstruct_unitary};

fn bench_qft(c: &mut Criterion) {
    let config = Configuration::default();
    let mut group = c.benchmark_group("table1/qft");
    group.sample_size(10);

    // Functional verification and plain simulation.
    for n in [8usize, 16, 24] {
        let instance = build_instance(Family::Qft, n);
        group.bench_with_input(BenchmarkId::new("t_trans", n), &instance, |b, inst| {
            b.iter(|| reconstruct_unitary(&inst.dynamic_circuit).unwrap())
        });
        let reconstruction = reconstruct_unitary(&instance.dynamic_circuit).unwrap();
        let aligned =
            align_to_reference(&instance.static_circuit, &reconstruction.circuit).unwrap();
        group.bench_with_input(BenchmarkId::new("t_ver", n), &instance, |b, inst| {
            b.iter(|| {
                check_functional_equivalence(&inst.static_circuit, &aligned, &config).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("t_sim", n), &instance, |b, inst| {
            b.iter(|| {
                let mut sim = StateVectorSimulator::new(inst.static_circuit.num_qubits());
                sim.run(&inst.static_circuit).unwrap();
                sim
            })
        });
    }

    // Extraction blows up exponentially: keep the sweep small, the doubling
    // per qubit is already clearly visible.
    for n in [8usize, 10, 12] {
        let instance = build_instance(Family::Qft, n);
        group.bench_with_input(BenchmarkId::new("t_extract", n), &instance, |b, inst| {
            b.iter(|| {
                extract_distribution(&inst.dynamic_circuit, &ExtractionConfig::default()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qft);
criterion_main!(benches);
