//! Benchmarks comparing the approaches for obtaining the measurement-outcome
//! distribution of a dynamic circuit, quantifying the discussion at the
//! beginning of Section 5 of the paper:
//!
//! * the paper's branching extraction scheme,
//! * a dense density-matrix ensemble simulation,
//! * stochastic shot-based sampling (with a fixed shot budget).

use bench::{build_instance, Family};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use density::{EnsembleConfig, EnsembleSimulator};
use sim::{extract_distribution, sample_distribution, ExtractionConfig, ShotConfig};

fn bench_distribution_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("methods/distribution");
    group.sample_size(10);
    // A sparse instance (QPE with an exactly representable phase) and a dense
    // one (QFT): the extraction scheme excels on the former and degrades on
    // the latter, exactly as in the paper's Table 1.
    let instances = [
        ("qpe9", build_instance(Family::Qpe, 9)),
        ("qft6", build_instance(Family::Qft, 6)),
    ];
    for (label, instance) in &instances {
        let dynamic = &instance.dynamic_circuit;
        group.bench_with_input(
            BenchmarkId::new("extraction", label),
            dynamic,
            |b, circuit| {
                b.iter(|| extract_distribution(circuit, &ExtractionConfig::default()).unwrap())
            },
        );
        if dynamic.num_qubits() <= 8 {
            group.bench_with_input(
                BenchmarkId::new("density_ensemble", label),
                dynamic,
                |b, circuit| {
                    b.iter(|| {
                        let mut ensemble =
                            EnsembleSimulator::with_config(circuit, EnsembleConfig::default())
                                .unwrap();
                        ensemble.run(circuit).unwrap();
                        ensemble.outcome_distribution()
                    })
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("stochastic_1024", label),
            dynamic,
            |b, circuit| {
                b.iter(|| {
                    sample_distribution(
                        circuit,
                        &ShotConfig {
                            shots: 1024,
                            seed: 7,
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distribution_methods);
criterion_main!(benches);
