//! Writes the QFT-10/12 + QPE-7/9 acceptance pairs as QASM to the directory
//! given as the first argument (static left, dynamic right).

fn main() {
    let dir = std::env::args().nth(1).expect("usage: gen_accept_qasm DIR");
    std::fs::create_dir_all(&dir).unwrap();
    let write = |name: &str, side: &str, c: &circuit::QuantumCircuit| {
        let path = format!("{dir}/{name}.{side}.qasm");
        std::fs::write(&path, circuit::qasm::to_qasm(c)).unwrap();
    };
    for n in [10usize, 12] {
        write(
            &format!("qft{n}"),
            "left",
            &algorithms::qft::qft_static(n, None, true),
        );
        write(
            &format!("qft{n}"),
            "right",
            &algorithms::qft::qft_dynamic(n),
        );
    }
    for n in [7usize, 9] {
        let phi = algorithms::qpe::random_exact_phase(n, 0xDAC2022);
        write(
            &format!("qpe{n}"),
            "left",
            &algorithms::qpe::qpe_static(phi, n, true),
        );
        write(
            &format!("qpe{n}"),
            "right",
            &algorithms::qpe::iqpe_dynamic(phi, n),
        );
    }
    println!("wrote acceptance pairs to {dir}");
}
