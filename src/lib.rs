//! # nonunitary-qcec — equivalence checking of dynamic quantum circuits
//!
//! Workspace façade crate: re-exports the individual crates of this
//! reproduction of *Burgholzer & Wille, "Handling Non-Unitaries in Quantum
//! Circuit Equivalence Checking" (DAC 2022)* so that downstream users can
//! depend on a single crate.
//!
//! * [`dd`] — decision-diagram package (states, unitaries, their algebra),
//! * [`circuit`] — quantum-circuit IR with measurements, resets and
//!   classically-controlled operations,
//! * [`algorithms`] — benchmark circuit generators (BV, QFT, QPE, …),
//! * [`transform`] — reset substitution + deferred measurements (Section 4),
//! * [`sim`] — decision-diagram simulation, measurement-outcome extraction
//!   (Section 5) and stochastic shot sampling,
//! * [`density`] — dense density-matrix / ensemble simulation (the reference
//!   oracle and the noise-model extension),
//! * [`compile`] — compilation passes (decomposition, basis rewriting,
//!   routing) for the "verify compilation results" use case,
//! * [`qcec`] — the equivalence-checking flows built on all of the above,
//! * [`portfolio`] — the parallel portfolio engine racing all applicable
//!   schemes with cooperative cancellation, plus the `verify` batch driver
//!   that fans whole workloads (JSON manifests or QASM directories) over a
//!   worker pool and emits machine-readable JSON reports.
//!
//! Long-running checks share one resource-limit vocabulary
//! ([`qcec::Budget`] / [`qcec::CancelToken`], re-exported from [`dd`]):
//! every entry point — the single-scheme checks, the extraction, the
//! `table1` harness and the portfolio — can be cancelled cooperatively and
//! capped in decision-diagram nodes and extraction leaves.
//!
//! Racing the schemes instead of picking one is the practical upshot of the
//! paper: functional reconstruction (Section 4) and fixed-input extraction
//! (Section 5) have wildly different cost profiles per circuit family, so
//! the portfolio's wall time tracks whichever happens to be fast. Racing
//! schemes share one concurrent decision-diagram store by default
//! ([`dd::SharedStore`]), so the miter, simulative and extraction walkers
//! reuse each other's gate diagrams and subdiagrams instead of re-interning
//! them per thread:
//!
//! ```
//! use algorithms::qpe;
//! use portfolio::{verify_portfolio, PortfolioConfig};
//!
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let result = verify_portfolio(
//!     &qpe::qpe_static(phi, 3, true),
//!     &qpe::iqpe_dynamic(phi, 3),
//!     &PortfolioConfig::default(),
//! );
//! assert!(result.verdict.considered_equivalent());
//! ```
//!
//! ```
//! use algorithms::qpe;
//! use qcec::{verify_dynamic_functional, Configuration};
//!
//! let phi = 3.0 * std::f64::consts::PI / 8.0;
//! let report = verify_dynamic_functional(
//!     &qpe::qpe_static(phi, 3, true),
//!     &qpe::iqpe_dynamic(phi, 3),
//!     &Configuration::default(),
//! )?;
//! assert!(report.equivalence.considered_equivalent());
//! # Ok::<(), qcec::DynamicCheckError>(())
//! ```

pub use algorithms;
pub use circuit;
pub use compile;
pub use dd;
pub use density;
pub use portfolio;
pub use qcec;
pub use sim;
pub use transform;
