//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! simplified value-tree model of the vendored `serde` crate. Supported
//! shapes — exactly the ones this workspace uses:
//!
//! * structs with named fields,
//! * enums with unit, tuple and struct variants (externally tagged, following
//!   serde's JSON conventions: `"Variant"`, `{"Variant": value}`,
//!   `{"Variant": [..]}`, `{"Variant": {..}}`).
//!
//! Generics, serde attributes (`#[serde(...)]`) and tuple structs are not
//! supported and produce a compile error, so accidental reliance on missing
//! behaviour fails loudly instead of silently misbehaving.
//!
//! The macro is written against the bare `proc_macro` API (no `syn`/`quote`,
//! which are unavailable offline): the input is parsed with a small
//! hand-rolled scanner and the generated impl is assembled as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with a list of variants.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` for a struct with named fields or an enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => serialize_struct(name, fields),
        Shape::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a struct with named fields or an enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::Struct { name, fields } => deserialize_struct(name, fields),
        Shape::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group.stream(),
        other => panic!(
            "serde_derive (vendored): `{name}` must have a braced body \
             (tuple structs are not supported), found {other:?}"
        ),
    };

    match keyword.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // the `#` and the bracketed group
            }
            // `pub`, optionally followed by `(crate)` etc.
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` pairs, returning the field names. Types are
/// skipped with angle-bracket awareness so `BTreeMap<Vec<bool>, f64>` does
/// not split at its inner comma.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(ident)) = tokens.get(i) else {
            break;
        };
        fields.push(ident.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(i) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let Some(TokenTree::Ident(ident)) = tokens.get(i) else {
            break;
        };
        let name = ident.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(group.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip to past the separating comma (also skips discriminants, which
        // this workspace does not use on serde types).
        while let Some(token) = tokens.get(i) {
            i += 1;
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for token in body {
        saw_token = true;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_token {
        count + 1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for field in fields {
        pushes.push_str(&format!(
            "pairs.push((\"{field}\".to_string(), serde::Serialize::serialize(&self.{field})));\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize(&self) -> serde::Value {{\n\
                 let mut pairs: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serde::Value::Object(pairs)\n\
             }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for field in fields {
        // Missing fields decode from `Null`, so `Option<T>` fields behave
        // like real serde (absent => None) while required fields still fail
        // with a field-specific error.
        inits.push_str(&format!(
            "{field}: match value.get(\"{field}\") {{\n\
                 Some(field_value) => serde::Deserialize::deserialize(field_value)?,\n\
                 None => serde::Deserialize::deserialize(&serde::Value::Null)\n\
                     .map_err(|_| serde::Error::missing_field(\"{name}\", \"{field}\"))?,\n\
             }},\n"
        ));
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
             fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 if !matches!(value, serde::Value::Object(_)) {{\n\
                     return Err(serde::Error::unexpected(\"object\", value));\n\
                 }}\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{v} => serde::Value::String(\"{v}\".to_string()),\n"
            )),
            VariantKind::Tuple(arity) => {
                let bindings: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                let pattern = bindings.join(", ");
                let inner = if *arity == 1 {
                    "serde::Serialize::serialize(f0)".to_string()
                } else {
                    let items: Vec<String> = bindings
                        .iter()
                        .map(|b| format!("serde::Serialize::serialize({b})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{v}({pattern}) => serde::Value::Object(vec![(\"{v}\".to_string(), {inner})]),\n"
                ));
            }
            VariantKind::Struct(fields) => {
                let pattern = fields.join(", ");
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize({f}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{v} {{ {pattern} }} => serde::Value::Object(vec![(\"{v}\".to_string(), \
                         serde::Value::Object(vec![{}]))]),\n",
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize(&self) -> serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
            }
            VariantKind::Tuple(arity) => {
                let body = if *arity == 1 {
                    format!("Ok({name}::{v}(serde::Deserialize::deserialize(inner)?))")
                } else {
                    let mut extract = format!(
                        "let items = inner.as_array()\
                             .ok_or_else(|| serde::Error::unexpected(\"array\", inner))?;\n\
                         if items.len() != {arity} {{\n\
                             return Err(serde::Error::custom(\"wrong tuple-variant arity\"));\n\
                         }}\n"
                    );
                    let args: Vec<String> = (0..*arity)
                        .map(|k| format!("serde::Deserialize::deserialize(&items[{k}])?"))
                        .collect();
                    extract.push_str(&format!("Ok({name}::{v}({}))", args.join(", ")));
                    format!("{{ {extract} }}")
                };
                tagged_arms.push_str(&format!("\"{v}\" => {body},\n"));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::Deserialize::deserialize(inner.get(\"{f}\")\
                                 .ok_or_else(|| serde::Error::missing_field(\"{name}\", \"{f}\"))?)?"
                        )
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{v}\" => Ok({name}::{v} {{ {} }}),\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
             fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 match value {{\n\
                     serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\
                         other => Err(serde::Error::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => Err(serde::Error::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                     other => Err(serde::Error::unexpected(\"enum representation\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
