//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored serde's [`Value`] tree as JSON text.
//! Numbers that hold an integral value within `±2^53` are printed without a
//! decimal point so reports stay readable and diff-friendly.

#![warn(missing_docs)]

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Returns an error when a non-finite float is encountered (JSON has no
/// representation for NaN/infinity).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text and decodes it into `T`.
///
/// # Errors
///
/// Returns an error for malformed JSON or when the value tree does not match
/// the shape `T` expects.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error::custom("cannot serialize a non-finite number"));
            }
            if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number encoding"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at offset {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Copy one UTF-8 code point verbatim.
                    let remainder = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = remainder
                        .chars()
                        .next()
                        .ok_or_else(|| Error::custom("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let text =
            r#"{"name":"qpe_3","ok":true,"nested":{"xs":[1,2.5,-3e2],"none":null},"s":"a\"b\n"}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value.get("name").unwrap().as_str(), Some("qpe_3"));
        assert_eq!(
            value
                .get("nested")
                .unwrap()
                .get("xs")
                .unwrap()
                .as_array()
                .unwrap()[2]
                .as_f64(),
            Some(-300.0)
        );
        let printed = to_string(&value).unwrap();
        let reparsed: Value = from_str(&printed).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn pretty_printing_is_indented_and_reparsable() {
        let value = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::Number(1.0)])),
            ("b".into(), Value::String("x".into())),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"a\""));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("true false").is_err());
    }
}
