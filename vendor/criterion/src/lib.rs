//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! then timed over enough iterations to fill a small measurement window
//! (scaled by `sample_size`), and the mean per-iteration wall time is
//! printed. No statistics, plots or baselines — but the relative numbers are
//! honest and the output is grep-friendly:
//!
//! ```text
//! portfolio/qpe/9         time: 12.345 ms  (34 iterations)
//! ```

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench`/`--test` flags from the harness are ignored.
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_window: Duration::from_millis(300),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(self, name, 100, Duration::from_millis(300), f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(filter) => name.contains(filter.as_str()),
            None => true,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_window: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (scales the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window directly.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measurement_window = window;
        self
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        let window = self.scaled_window();
        run_benchmark(self.criterion, &name, self.sample_size, window, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f` under `id` (a [`BenchmarkId`] or a plain string)
    /// without an explicit input.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().0);
        let window = self.scaled_window();
        run_benchmark(self.criterion, &name, self.sample_size, window, f);
        self
    }

    /// Finishes the group (stateless in this stand-in).
    pub fn finish(self) {}

    fn scaled_window(&self) -> Duration {
        // criterion's default is 100 samples; treat smaller sample sizes as a
        // request for a proportionally shorter measurement.
        self.measurement_window
            .mul_f64((self.sample_size as f64 / 100.0).clamp(0.05, 1.0))
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier `"{function}/{parameter}"`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    window: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring for the window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and single-shot estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(20));

        let iterations = (self.window.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iterations));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    _sample_size: usize,
    window: Duration,
    mut f: F,
) {
    if !criterion.matches(name) {
        return;
    }
    let mut bencher = Bencher {
        window,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((total, iterations)) => {
            let mean = total / iterations as u32;
            println!(
                "{name:<48} time: {}  ({iterations} iterations)",
                format_duration(mean)
            );
        }
        None => println!("{name:<48} (no measurement — Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        // Would hang for a long time if not skipped: iter is never called.
        c.bench_function("other", |_b| panic!("must be filtered out"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
