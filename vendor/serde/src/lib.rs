//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! deliberately simplified serialization framework that is source-compatible
//! with the way this workspace uses serde: `#[derive(serde::Serialize,
//! serde::Deserialize)]` on structs with named fields and on enums with
//! unit, tuple and struct variants.
//!
//! Instead of serde's visitor-based data model, everything funnels through a
//! single JSON-like [`Value`] tree. The companion `serde_json` crate renders
//! and parses that tree as JSON text with serde's externally-tagged enum
//! conventions, so reports written by one binary can be read back by
//! another.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree — the data model of this simplified serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers are exact up to 2^53).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean of a bool value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error raised when a [`Value`] cannot be decoded into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Error for a missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` while decoding `{ty}`"))
    }

    /// Error for a value of the wrong kind.
    pub fn unexpected(expected: &str, found: &Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", found.kind()))
    }

    /// Error for an unknown enum variant tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        Error::custom(format!("unknown variant `{tag}` of enum `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Decodes `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::unexpected("bool", value))
    }
}

macro_rules! impl_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::unexpected("number", value))
            }
        }
    )*};
}
impl_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::unexpected("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::unexpected("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::unexpected("array", value))?;
        if items.len() != 2 {
            return Err(Error::custom("expected a 2-element array"));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

// Maps serialize as arrays of `[key, value]` pairs. (Real serde_json refuses
// non-string keys outright; an array-of-pairs encoding round-trips any key
// type, which the `OutcomeDistribution` map over bit vectors needs.)
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::unexpected("array of pairs", value))?;
        let mut map = BTreeMap::new();
        for item in items {
            let (k, v) = <(K, V)>::deserialize(item)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Number(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs = value
            .as_f64()
            .ok_or_else(|| Error::unexpected("number of seconds", value))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(Error::custom("duration must be a non-negative number"));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
