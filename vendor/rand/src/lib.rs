//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this vendored crate provides the (small) subset of the `rand` 0.8 API the
//! workspace actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test-stimulus generation, but **not** the same stream as the
//! real `rand` crate and not cryptographically secure.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value of a type with a canonical uniform distribution
    /// (`bool`, floats in `[0, 1)`, or full-range integers).
    fn r#gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, like `rand`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
    )*};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-3.2..3.2);
            assert!((-3.2..3.2).contains(&f));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_and_floats_cover_both_halves() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut trues = 0;
        for _ in 0..1000 {
            if rng.r#gen::<bool>() {
                trues += 1;
            }
            let f: f64 = rng.r#gen();
            assert!((0.0..1.0).contains(&f));
        }
        assert!((300..700).contains(&trues), "bool sampling is badly biased");
    }
}
