//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range/tuple strategies, [`any`], `proptest::option::of`,
//! `proptest::collection::vec`, [`ProptestConfig`], and the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Unlike the real crate there is **no shrinking**: a failing case panics
//! with the case number and the generated inputs' `Debug` rendering. Input
//! generation is deterministic per (test, case index) so failures reproduce.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::Range;

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Creates the generator for one test case.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(0x9E37_79B9 ^ (u64::from(case) << 17) ^ 0x5EED),
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let value = (rng.next_u64() as u128) % span;
                (self.start as i128 + value as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E),);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// `Option` strategies, mirroring `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` a quarter of the time and `Some` otherwise.
    #[derive(Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Wraps a strategy into an optional strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors with a length drawn from a range.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let length = Strategy::generate(&self.length, rng);
            (0..length).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy with element strategy `element` and a length in
    /// `length` (half-open, like proptest's `SizeRange`).
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, panicking with the
/// formatted message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("property failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            panic!(
                "property failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            );
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 2usize..9, y in -1.5f64..2.5) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn mapped_and_composed_strategies_work(
            v in crate::collection::vec((0u8..4, any::<bool>()).prop_map(|(a, b)| (a, b)), 1..6),
            o in crate::option::of(0..3usize),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, _) in &v {
                prop_assert!(*a < 4);
            }
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        let s = 0u64..1000;
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
