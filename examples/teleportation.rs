//! Teleportation: a dynamic circuit whose classically-controlled corrections
//! are essential. The example checks, for several payload states, that the
//! teleported qubit reproduces the payload's measurement statistics and that
//! the circuit is fixed-input equivalent to directly preparing the payload on
//! the target qubit.
//!
//! Run with: `cargo run --release --example teleportation`

use algorithms::teleport;
use sim::{extract_distribution, ExtractionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let payloads = [
        (0.0, 0.0, 0.0),                         // |0⟩
        (std::f64::consts::PI, 0.0, 0.0),        // |1⟩
        (std::f64::consts::FRAC_PI_2, 0.0, 0.0), // |+⟩
        (1.1, 0.7, -0.3),                        // generic state
    ];

    for (theta, phi, lambda) in payloads {
        let circuit = teleport::teleport(theta, phi, lambda, true);
        let extraction = extract_distribution(&circuit, &ExtractionConfig::default())?;

        // Marginal of the verification measurement (classical bit 2).
        let mut p1 = 0.0;
        for (outcome, p) in extraction.distribution.iter() {
            if outcome[2] {
                p1 += p;
            }
        }
        let expected = (theta / 2.0).sin().powi(2);
        println!(
            "payload U({theta:.2}, {phi:.2}, {lambda:.2})|0⟩:  P(measure 1) = {p1:.6}  (expected {expected:.6})  \
             [{} outcomes, {} branches]",
            extraction.distribution.len(),
            extraction.leaves
        );
        assert!(
            (p1 - expected).abs() < 1e-9,
            "teleportation corrupted the payload"
        );

        // Reference: preparing the payload directly on the target qubit must
        // give the same marginal on classical bit 2.
        let reference = teleport::teleport_reference(theta, phi, lambda);
        let reference_extraction = extract_distribution(&reference, &ExtractionConfig::default())?;
        let mut reference_p1 = 0.0;
        for (outcome, p) in reference_extraction.distribution.iter() {
            if outcome[2] {
                reference_p1 += p;
            }
        }
        assert!((p1 - reference_p1).abs() < 1e-9);
    }

    println!("\nteleportation preserves every payload's statistics — protocol verified");
    Ok(())
}
