//! Walk-through of the paper's running example (Figures 1–4 and Examples
//! 1–7): the 3-bit phase estimation of U = P(3π/8).
//!
//! Run with: `cargo run --release --example iqpe_walkthrough`

use algorithms::qpe;
use qcec::{check_functional_equivalence, Configuration};
use sim::{extract_distribution, ExtractionConfig};
use transform::{align_to_reference, defer_measurements, substitute_resets};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let precision = 3;

    // Figure 1a: the static 3-bit QPE circuit.
    let static_qpe = qpe::qpe_static(phi, precision, true);
    println!("=== Figure 1a — static QPE ===");
    println!("{static_qpe}");

    // Figure 2: the dynamic (iterative) realization on two qubits.
    let iqpe = qpe::iqpe_dynamic(phi, precision);
    println!("=== Figure 2 — dynamic IQPE ===");
    println!("{iqpe}");

    // Example 4 / Figure 3a: substitute every reset with a fresh qubit.
    let reset_free = substitute_resets(&iqpe);
    println!(
        "=== Figure 3a — after reset substitution ({} fresh qubits) ===",
        reset_free.added_qubits
    );
    println!("{}", reset_free.circuit);

    // Example 5 / Figure 3b: defer all measurements to the end.
    let deferred = defer_measurements(&reset_free.circuit)?;
    println!(
        "=== Figure 3b — after deferring measurements ({} conditions replaced) ===",
        deferred.replaced_conditions
    );
    println!("{}", deferred.circuit);

    // Example 6: the reconstructed circuit is equivalent to the original QPE.
    let aligned = align_to_reference(&static_qpe, &deferred.circuit)?;
    let check = check_functional_equivalence(&static_qpe, &aligned, &Configuration::default())?;
    println!(
        "=== Example 6 — equivalence of Fig. 3b and Fig. 1a: {} (identity fidelity {:.6}) ===",
        check.equivalence, check.identity_fidelity
    );
    println!();

    // Example 7 / Figure 4: extract the measurement-outcome distribution of
    // the dynamic circuit by branching simulation.
    let extraction = extract_distribution(&iqpe, &ExtractionConfig::default())?;
    println!(
        "=== Figure 4 — extracted distribution ({} branching points, {} leaf simulations) ===",
        extraction.branch_points, extraction.leaves
    );
    print!("{}", extraction.distribution);
    let p001 = extraction
        .distribution
        .probability([true, false, false].as_ref());
    println!();
    println!(
        "P(|001⟩) = {:.3}  (the paper's Example 7 computes 1/2 · 0.85 · 0.96 ≈ 0.408)",
        p001
    );

    Ok(())
}
