//! Portfolio verification in action: race all applicable schemes on
//! instances where different schemes win, then drive a small batch through
//! the library behind the `verify` binary.
//!
//! Run with `cargo run --release --example portfolio_race`.

use algorithms::{bv, qft, qpe};
use portfolio::batch::{run_batch, BatchOptions, Manifest, PairSpec};
use portfolio::{verify_portfolio, PortfolioConfig};

fn race(name: &str, left: &circuit::QuantumCircuit, right: &circuit::QuantumCircuit) {
    let result = verify_portfolio(left, right, &PortfolioConfig::default());
    println!(
        "{name}: {} (winner: {}, verdict after {:.2} ms, all workers done after {:.2} ms)",
        result.verdict,
        result.winner.map(|s| s.name()).unwrap_or("-"),
        result.time_to_verdict.as_secs_f64() * 1e3,
        result.total_time.as_secs_f64() * 1e3,
    );
    for scheme in &result.schemes {
        let status = if scheme.cancelled {
            "cancelled".to_string()
        } else if let Some(verdict) = scheme.verdict {
            format!("{verdict}")
        } else {
            scheme.error.clone().unwrap_or_else(|| "?".into())
        };
        println!(
            "    {:<36} {:>10.2} ms  {}",
            scheme.scheme.name(),
            scheme.duration.as_secs_f64() * 1e3,
            status
        );
    }
}

fn main() {
    // The paper's running example: tiny, resolved sequentially without
    // spawning a single thread.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    race(
        "qpe_3 (paper Example 6)",
        &qpe::qpe_static(phi, 3, true),
        &qpe::iqpe_dynamic(phi, 3),
    );

    // Dynamic QFT at 14 qubits: the fixed-input extraction wins while the
    // three reconstruction schedules get cancelled mid-miter.
    race(
        "qft_14 (extraction wins)",
        &qft::qft_static(14, None, true),
        &qft::qft_dynamic(14),
    );

    // A wrong hidden string: whichever scheme finishes first refutes it.
    race(
        "bv_24 (injected bug)",
        &bv::bv_static(&bv::random_hidden_string(24, 7), true),
        &bv::bv_dynamic(&bv::random_hidden_string(24, 8)),
    );

    // The same pairs as a batch workload, the way the `verify` binary runs
    // them (pairs fan out over a worker pool, each pair races internally).
    let dir = std::env::temp_dir().join(format!("portfolio-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    let mut manifest = Manifest {
        pairs: Vec::new(),
        chains: None,
    };
    for (name, left, right) in [
        (
            "qpe_3",
            qpe::qpe_static(phi, 3, true),
            qpe::iqpe_dynamic(phi, 3),
        ),
        ("qft_6", qft::qft_static(6, None, true), qft::qft_dynamic(6)),
        (
            "bv_12",
            bv::bv_static(&bv::random_hidden_string(12, 3), true),
            bv::bv_dynamic(&bv::random_hidden_string(12, 3)),
        ),
    ] {
        let left_path = dir.join(format!("{name}.left.qasm"));
        let right_path = dir.join(format!("{name}.right.qasm"));
        std::fs::write(&left_path, circuit::qasm::to_qasm(&left)).expect("write qasm");
        std::fs::write(&right_path, circuit::qasm::to_qasm(&right)).expect("write qasm");
        manifest.pairs.push(PairSpec {
            name: Some(name.to_string()),
            left: left_path.to_string_lossy().into_owned(),
            right: right_path.to_string_lossy().into_owned(),
            qubits: None,
        });
    }
    let report = run_batch(&manifest, &BatchOptions::default());
    println!(
        "\nbatch: {}/{} pairs equivalent in {:.2} ms",
        report.pairs_equivalent,
        report.pairs_total,
        report.total_time.as_secs_f64() * 1e3
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    let _ = std::fs::remove_dir_all(&dir);
}
