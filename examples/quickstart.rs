//! Quickstart: verify that a dynamic (iterative) phase-estimation circuit is
//! equivalent to its static counterpart, using both schemes of the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use algorithms::qpe;
use qcec::{verify_dynamic_functional, verify_fixed_input, Configuration};
use sim::ExtractionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: estimate the phase of U = P(3π/8) for the
    // eigenstate |1⟩ with 3 bits of precision.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let precision = 3;

    let static_qpe = qpe::qpe_static(phi, precision, true);
    let dynamic_iqpe = qpe::iqpe_dynamic(phi, precision);

    println!(
        "static QPE : {} qubits, {} gates",
        static_qpe.num_qubits(),
        static_qpe.gate_count()
    );
    println!(
        "dynamic IQPE: {} qubits, {} gates",
        dynamic_iqpe.num_qubits(),
        dynamic_iqpe.gate_count()
    );
    println!();

    // Scheme 1 (Section 4): unitary reconstruction + functional equivalence.
    let config = Configuration::default();
    let functional = verify_dynamic_functional(&static_qpe, &dynamic_iqpe, &config)?;
    println!(
        "functional verification : {} (t_trans = {:?}, t_ver = {:?}, {} fresh qubits)",
        functional.equivalence,
        functional.transformation_time,
        functional.verification_time,
        functional.added_qubits
    );

    // Scheme 2 (Section 5): extraction of the measurement-outcome
    // distribution for the fixed |0…0⟩ input.
    let fixed = verify_fixed_input(
        &static_qpe,
        &dynamic_iqpe,
        &config,
        &ExtractionConfig::default(),
    )?;
    println!(
        "fixed-input verification: {} (total-variation distance = {:.2e})",
        fixed.equivalence, fixed.total_variation_distance
    );
    println!();
    println!("measurement-outcome distribution of the dynamic circuit:");
    print!("{}", fixed.dynamic_distribution);

    Ok(())
}
