//! Comparison of the approaches discussed in Section 5 of the paper for
//! obtaining the measurement-outcome distribution of a dynamic circuit:
//!
//! * the paper's branching **extraction** scheme (exact, decision diagrams),
//! * a dense **density-matrix ensemble** simulation (exact, exponential memory),
//! * **stochastic sampling** of individual executions (approximate),
//!
//! plus the classical simulation of the static counterpart as the reference.
//!
//! Run with: `cargo run --release --example methods_comparison`

use algorithms::qpe;
use density::EnsembleSimulator;
use sim::{
    extract_distribution, sample_distribution, shots_to_reach_tolerance, ExtractionConfig,
    ShotConfig, StateVectorSimulator,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example: θ = 3/16 is *not* representable with three
    // fractional bits, so the outcome distribution has several non-zero
    // entries and the stochastic baseline actually has to work for it.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let precision = 3;
    let static_qpe = qpe::qpe_static(phi, precision, true);
    let iqpe = qpe::iqpe_dynamic(phi, precision);
    println!(
        "IQPE with {precision}-bit precision: {} qubits / {} gates (static: {} qubits / {} gates)",
        iqpe.num_qubits(),
        iqpe.gate_count(),
        static_qpe.num_qubits(),
        static_qpe.gate_count()
    );
    println!();

    // Reference: classical simulation of the static circuit.
    let start = Instant::now();
    let mut reference = StateVectorSimulator::new(static_qpe.num_qubits());
    reference.run(&static_qpe)?;
    let reference_distribution = reference.outcome_distribution();
    println!("static simulation        : {:>10.3?}", start.elapsed());

    // Scheme 2: branching extraction.
    let extraction = extract_distribution(&iqpe, &ExtractionConfig::default())?;
    println!(
        "extraction (paper)       : {:>10.3?}  ({} leaves, TV distance to reference {:.2e})",
        extraction.duration,
        extraction.leaves,
        extraction
            .distribution
            .total_variation_distance(&reference_distribution)
    );

    // Density-matrix ensemble (exact but dense).
    let start = Instant::now();
    let mut ensemble = EnsembleSimulator::new(&iqpe)?;
    ensemble.run(&iqpe)?;
    let ensemble_distribution = ensemble.outcome_distribution();
    println!(
        "density-matrix ensemble  : {:>10.3?}  ({} branches, TV distance {:.2e})",
        start.elapsed(),
        ensemble.branches().len(),
        ensemble_distribution.total_variation_distance(&reference_distribution)
    );

    // Stochastic sampling with a fixed shot budget.
    for shots in [256usize, 4096] {
        let result = sample_distribution(&iqpe, &ShotConfig { shots, seed: 1 })?;
        println!(
            "stochastic, {:>6} shots : {:>10.3?}  (TV distance {:.2e})",
            shots,
            result.duration,
            result
                .distribution
                .total_variation_distance(&reference_distribution)
        );
    }

    // How many shots does it take to match the extraction within 1%?
    match shots_to_reach_tolerance(&iqpe, &extraction.distribution, 0.01, 1 << 20, 7) {
        Ok(shots) => println!("\nshots needed to reach a 1% total-variation distance: {shots}"),
        Err(budget) => println!("\nno convergence to 1% within {budget} shots"),
    }

    Ok(())
}
