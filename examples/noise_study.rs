//! Why dynamic circuits (and their verification) matter on noisy hardware.
//!
//! Example 3 of the paper argues that the dynamic IQPE realization reduces
//! the quantum cost of phase estimation — "significantly improving the
//! expected fidelity when executing the circuit on an actual device". This
//! example quantifies that claim with the density-matrix noise model: both
//! realizations are compiled to the IBMQ London device and simulated under a
//! depolarising noise model, and the probability of reading the correct
//! phase estimate is compared.
//!
//! (The verification flows themselves always compare the *ideal* circuits;
//! the noise model only illustrates why one would prefer the dynamic
//! realization in the first place.)
//!
//! Run with: `cargo run --release --example noise_study`

use algorithms::qpe;
use circuit::{OpKind, QuantumCircuit};
use compile::{Compiler, Target};
use density::{DensityMatrixSimulator, EnsembleSimulator, NoiseModel};

/// Probability of reading the expected phase bits from the static circuit,
/// simulated with the given noise model. Measurements are non-selective, so
/// the diagonal of the final density matrix is read directly.
fn static_success_probability(
    circuit: &QuantumCircuit,
    noise: NoiseModel,
    expected: &[bool],
) -> f64 {
    let mut simulator =
        DensityMatrixSimulator::new(circuit.num_qubits(), noise).expect("small register");
    simulator
        .run(&circuit.without_measurements())
        .expect("static circuit is unitary");
    let diagonal = simulator.state().diagonal_probabilities();
    diagonal
        .iter()
        .enumerate()
        .filter(|(index, _)| {
            expected
                .iter()
                .enumerate()
                .all(|(bit, &value)| ((index >> bit) & 1 == 1) == value)
        })
        .map(|(_, probability)| probability)
        .sum()
}

/// Probability of reading the expected phase bits from the dynamic circuit
/// under noise: an ensemble simulation with a noise channel applied to every
/// qubit an operation touches, immediately after the operation.
fn dynamic_success_probability(
    circuit: &QuantumCircuit,
    noise: &NoiseModel,
    expected: &[bool],
) -> f64 {
    let mut ensemble = EnsembleSimulator::new(circuit).expect("small register");
    for op in circuit.iter() {
        ensemble.apply(op).expect("dynamic circuit simulates");
        if let OpKind::Unitary {
            target, controls, ..
        } = &op.kind
        {
            let channel = if controls.is_empty() {
                &noise.single_qubit
            } else {
                &noise.two_qubit
            };
            if let Some(channel) = channel {
                ensemble.apply_channel(channel, *target);
                for control in controls {
                    ensemble.apply_channel(channel, control.qubit);
                }
            }
        }
    }
    ensemble.outcome_distribution().probability(expected)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A phase that is exactly representable with 3 bits, so the ideal
    // algorithm succeeds with certainty: θ = 5/8 = 0.101₂ (phase_from_bits
    // already returns the phase-gate angle φ = 2πθ).
    let bits = [true, false, true];
    let phi = qpe::phase_from_bits(&bits);
    let precision = bits.len();

    let static_qpe = qpe::qpe_static(phi, precision, true);
    let iqpe = qpe::iqpe_dynamic(phi, precision);

    // Compile both to the London device so the gate counts are realistic.
    let compiled_static = Compiler::new(Target::ibmq_london()).compile(&static_qpe)?;
    let compiled_dynamic = Compiler::new(Target::ibmq_london()).compile(&iqpe)?;
    println!(
        "compiled static QPE  : {} qubits, {} gates ({} SWAPs)",
        compiled_static.circuit.num_qubits(),
        compiled_static.gate_count(),
        compiled_static.swaps_inserted
    );
    println!(
        "compiled dynamic IQPE: {} qubits, {} gates ({} SWAPs)",
        compiled_dynamic.circuit.num_qubits(),
        compiled_dynamic.gate_count(),
        compiled_dynamic.swaps_inserted
    );
    println!();

    let ideal_static =
        static_success_probability(&compiled_static.circuit, NoiseModel::noiseless(), &bits);
    let ideal_dynamic =
        dynamic_success_probability(&compiled_dynamic.circuit, &NoiseModel::noiseless(), &bits);
    println!("ideal success probability : static {ideal_static:.4}, dynamic {ideal_dynamic:.4}");
    println!("(depolarising noise applied after every gate)");
    for (p1, p2) in [(0.001, 0.01), (0.002, 0.02), (0.005, 0.05)] {
        let noise = NoiseModel::depolarizing(p1, p2);
        let noisy_static =
            static_success_probability(&compiled_static.circuit, noise.clone(), &bits);
        let noisy_dynamic = dynamic_success_probability(&compiled_dynamic.circuit, &noise, &bits);
        println!(
            "p1 = {p1:.3}, p2 = {p2:.3}     : static {noisy_static:.4}, dynamic {noisy_dynamic:.4}"
        );
    }
    println!();
    println!(
        "The dynamic realization retains a higher success probability because far fewer \
         two-qubit gates (and no routing SWAPs) are needed — the paper's Example 3."
    );
    Ok(())
}
