//! OpenQASM round trip: export a dynamic circuit, parse it back and prove the
//! parsed circuit equivalent to the original.
//!
//! Run with: `cargo run --release --example qasm_roundtrip`

use algorithms::qpe;
use circuit::qasm;
use qcec::{verify_dynamic_functional, verify_fixed_input, Configuration};
use sim::ExtractionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let phi = qpe::phase_from_bits(&[true, false, true, true]);
    let iqpe = qpe::iqpe_dynamic(phi, 4);

    let text = qasm::to_qasm(&iqpe);
    println!("=== exported OpenQASM ===\n{text}");

    let parsed = qasm::from_qasm(&text)?;
    println!(
        "parsed back: {} qubits, {} classical bits, {} operations",
        parsed.num_qubits(),
        parsed.num_bits(),
        parsed.len()
    );

    // The parsed circuit must be fully functionally equivalent to the
    // original dynamic circuit (both go through the same reconstruction).
    let config = Configuration::default();
    let functional = verify_dynamic_functional(&iqpe, &parsed, &config)?;
    println!(
        "functional equivalence of original and re-parsed circuit: {}",
        functional.equivalence
    );
    assert!(functional.equivalence.considered_equivalent());

    // … and it must produce the same measurement-outcome distribution.
    let fixed = verify_fixed_input(&iqpe, &parsed, &config, &ExtractionConfig::default())?;
    println!(
        "fixed-input equivalence: {} (TVD = {:.2e})",
        fixed.equivalence, fixed.total_variation_distance
    );
    assert!(fixed.equivalence.considered_equivalent());

    Ok(())
}
