//! Verification of compilation results (the paper's Section 2.3 / Fig. 1b):
//! compile the 3-bit QPE circuit to the 5-qubit IBMQ London device, then use
//! equivalence checking to confirm the compiler preserved the functionality —
//! and show that the checker catches an injected compiler bug.
//!
//! Run with: `cargo run --release --example compile_and_verify`

use algorithms::qpe;
use circuit::QuantumCircuit;
use compile::{Compiler, Target};
use qcec::{check_functional_equivalence, Configuration};
use sim::{extract_distribution, ExtractionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Fig. 1a): 3-bit QPE of U = P(3π/8).
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let static_qpe = qpe::qpe_static(phi, 3, false);

    // Compile to the T-shaped IBMQ London device (Fig. 1b).
    let target = Target::ibmq_london();
    let compiled = Compiler::new(target.clone()).compile(&static_qpe)?;
    println!(
        "original circuit : {} qubits, {} gates",
        static_qpe.num_qubits(),
        static_qpe.gate_count()
    );
    println!(
        "compiled circuit : {} qubits, {} gates ({} SWAPs, {} ops decomposed, {} gates rebased, compiled in {:?})",
        compiled.circuit.num_qubits(),
        compiled.gate_count(),
        compiled.swaps_inserted,
        compiled.decomposed_operations,
        compiled.rewritten_gates,
        compiled.duration,
    );

    // Verify: the compiled circuit (on 5 physical qubits) must be equivalent
    // to the original padded with idle qubits.
    let padded = static_qpe.map_qubits(target.coupling.num_qubits(), |q| q);
    let check =
        check_functional_equivalence(&padded, &compiled.circuit, &Configuration::default())?;
    println!("verification     : {}", check.equivalence);

    // Inject a compiler bug (drop the first CX) and check again.
    let dropped = compiled
        .circuit
        .iter()
        .position(|op| op.qubits().len() == 2)
        .expect("compiled circuit contains a CX");
    let mut broken =
        QuantumCircuit::new(compiled.circuit.num_qubits(), compiled.circuit.num_bits());
    for (index, op) in compiled.circuit.iter().enumerate() {
        if index != dropped {
            broken.push(op.clone());
        }
    }
    let check = check_functional_equivalence(&padded, &broken, &Configuration::default())?;
    println!("with injected bug: {}", check.equivalence);
    println!();

    // The same works for the *dynamic* IQPE realization: compilation must
    // preserve the measurement-outcome distribution (scheme 2).
    let iqpe = qpe::iqpe_dynamic(phi, 3);
    let compiled_iqpe = Compiler::new(Target::ibmq_london()).compile(&iqpe)?;
    let before = extract_distribution(&iqpe, &ExtractionConfig::default())?;
    let after = extract_distribution(&compiled_iqpe.circuit, &ExtractionConfig::default())?;
    println!(
        "dynamic IQPE     : {} gates before, {} gates after compilation",
        iqpe.gate_count(),
        compiled_iqpe.gate_count()
    );
    println!(
        "distribution distance before vs. after compilation: {:.2e}",
        before
            .distribution
            .total_variation_distance(&after.distribution)
    );

    Ok(())
}
