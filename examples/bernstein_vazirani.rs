//! Bernstein–Vazirani: verify a 2-qubit dynamic realization against the
//! static oracle circuit for a wide register, with both schemes, and show
//! that the extracted distribution recovers the hidden string.
//!
//! Run with: `cargo run --release --example bernstein_vazirani [n_bits]`

use algorithms::bv;
use qcec::{verify_dynamic_functional, Configuration};
use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_bits: usize = std::env::args()
        .nth(1)
        .map(|arg| arg.parse())
        .transpose()?
        .unwrap_or(48);

    let hidden = bv::random_hidden_string(n_bits, 0xBEEF);
    let static_circuit = bv::bv_static(&hidden, true);
    let dynamic_circuit = bv::bv_dynamic(&hidden);
    println!(
        "hidden string ({n_bits} bits): {}",
        hidden
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect::<String>()
    );
    println!(
        "static circuit : {} qubits, {} gates",
        static_circuit.num_qubits(),
        static_circuit.gate_count()
    );
    println!(
        "dynamic circuit: {} qubits, {} gates",
        dynamic_circuit.num_qubits(),
        dynamic_circuit.gate_count()
    );

    // Scheme 1: full functional verification.
    let report =
        verify_dynamic_functional(&static_circuit, &dynamic_circuit, &Configuration::default())?;
    println!(
        "functional verification: {} (t_trans = {:?}, t_ver = {:?})",
        report.equivalence, report.transformation_time, report.verification_time
    );

    // Scheme 2: the dynamic circuit's distribution is a single spike on the
    // hidden string — extraction is essentially free.
    let start = Instant::now();
    let extraction = extract_distribution(&dynamic_circuit, &ExtractionConfig::default())?;
    let t_extract = start.elapsed();
    let (outcome, probability) = extraction
        .distribution
        .most_probable()
        .expect("non-empty distribution");
    println!(
        "extraction: {} leaf simulation(s) in {:?}, P(hidden string) = {:.6}",
        extraction.leaves, t_extract, probability
    );
    assert_eq!(
        outcome, &hidden,
        "extraction must recover the hidden string"
    );

    // Reference: plain simulation of the static circuit.
    let start = Instant::now();
    let mut simulator = StateVectorSimulator::new(static_circuit.num_qubits());
    simulator.run(&static_circuit)?;
    let t_sim = start.elapsed();
    println!("plain simulation of the static circuit: {t_sim:?}");
    println!(
        "speed-up of extraction over static simulation: {:.1}x",
        t_sim.as_secs_f64() / t_extract.as_secs_f64().max(1e-9)
    );

    Ok(())
}
