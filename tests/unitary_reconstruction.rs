//! Integration tests for the Section 4 flow across all benchmark families:
//! transformation, alignment and functional equivalence checking.

use algorithms::{bv, qft, qpe};
use qcec::{verify_dynamic_functional, Configuration, Equivalence, Strategy};
use transform::reconstruct_unitary;

#[test]
fn iqpe_matches_static_qpe_for_several_precisions() {
    for precision in [1usize, 2, 3, 5, 8] {
        let phi = qpe::random_exact_phase(precision, precision as u64 + 1);
        let static_qpe = qpe::qpe_static(phi, precision, true);
        let iqpe = qpe::iqpe_dynamic(phi, precision);
        let report = verify_dynamic_functional(&static_qpe, &iqpe, &Configuration::default())
            .expect("verification runs");
        assert!(
            report.equivalence.considered_equivalent(),
            "precision {precision}"
        );
        assert_eq!(report.added_qubits, precision.saturating_sub(1));
    }
}

#[test]
fn iqpe_with_inexact_phase_is_still_functionally_equivalent() {
    // Functional equivalence holds for any phase, not only exactly
    // representable ones.
    let phi = 2.0 * std::f64::consts::PI * 0.337;
    let static_qpe = qpe::qpe_static(phi, 4, true);
    let iqpe = qpe::iqpe_dynamic(phi, 4);
    let report = verify_dynamic_functional(&static_qpe, &iqpe, &Configuration::default())
        .expect("verification runs");
    assert!(report.equivalence.considered_equivalent());
}

#[test]
fn dynamic_bv_matches_static_bv_for_various_strings() {
    for (len, seed) in [(1usize, 1u64), (4, 2), (9, 3), (16, 4)] {
        let hidden = bv::random_hidden_string(len, seed);
        let report = verify_dynamic_functional(
            &bv::bv_static(&hidden, true),
            &bv::bv_dynamic(&hidden),
            &Configuration::default(),
        )
        .expect("verification runs");
        assert!(report.equivalence.considered_equivalent(), "len {len}");
    }

    // Edge cases: all-zeros and all-ones hidden strings.
    for hidden in [vec![false; 6], vec![true; 6]] {
        let report = verify_dynamic_functional(
            &bv::bv_static(&hidden, true),
            &bv::bv_dynamic(&hidden),
            &Configuration::default(),
        )
        .expect("verification runs");
        assert!(report.equivalence.considered_equivalent());
    }
}

#[test]
fn dynamic_qft_matches_static_qft() {
    for n in [1usize, 2, 3, 6, 8] {
        let report = verify_dynamic_functional(
            &qft::qft_static(n, None, true),
            &qft::qft_dynamic(n),
            &Configuration::default(),
        )
        .expect("verification runs");
        assert!(report.equivalence.considered_equivalent(), "n = {n}");
    }
}

#[test]
fn approximate_qft_pair_is_equivalent() {
    // Both sides approximated with the same cutoff (as in the paper's large
    // instances) must still be equivalent.
    let n = 10;
    let cutoff = 4;
    let report = verify_dynamic_functional(
        &qft::qft_static(n, Some(cutoff), true),
        &qft::qft_dynamic_approx(n, Some(cutoff)),
        &Configuration::default(),
    )
    .expect("verification runs");
    assert!(report.equivalence.considered_equivalent());
}

#[test]
fn every_strategy_agrees_on_the_verdict() {
    let phi = qpe::random_exact_phase(4, 99);
    let static_qpe = qpe::qpe_static(phi, 4, true);
    let iqpe = qpe::iqpe_dynamic(phi, 4);
    for strategy in [
        Strategy::Reference,
        Strategy::OneToOne,
        Strategy::Proportional,
    ] {
        let config = Configuration {
            strategy,
            ..Default::default()
        };
        let report =
            verify_dynamic_functional(&static_qpe, &iqpe, &config).expect("verification runs");
        assert!(
            report.equivalence.considered_equivalent(),
            "strategy {strategy:?}"
        );
    }
}

#[test]
fn broken_dynamic_circuits_are_rejected() {
    // Wrong correction angle in the IQPE feedback.
    let phi = qpe::random_exact_phase(3, 5);
    let static_qpe = qpe::qpe_static(phi, 3, true);
    let mut broken = qpe::iqpe_dynamic(phi, 3);
    broken.z(0); // extra gate on the working qubit at the very end
    let report = verify_dynamic_functional(&static_qpe, &broken, &Configuration::default())
        .expect("verification runs");
    assert_eq!(report.equivalence, Equivalence::NotEquivalent);

    // Hidden-string mismatch in BV.
    let report = verify_dynamic_functional(
        &bv::bv_static(&[true, true, false, false], true),
        &bv::bv_dynamic(&[true, true, false, true]),
        &Configuration::default(),
    )
    .expect("verification runs");
    assert_eq!(report.equivalence, Equivalence::NotEquivalent);
}

#[test]
fn reconstruction_qubit_accounting_matches_the_paper() {
    // n_dyn + r = n_static for every benchmark family (the paper's argument
    // that the scheme augments the circuit "just enough").
    let phi = qpe::random_exact_phase(6, 17);
    let cases = vec![
        (
            qpe::qpe_static(phi, 6, true).num_qubits(),
            qpe::iqpe_dynamic(phi, 6),
        ),
        (
            bv::bv_static(&bv::random_hidden_string(9, 2), true).num_qubits(),
            bv::bv_dynamic(&bv::random_hidden_string(9, 2)),
        ),
        (
            qft::qft_static(7, None, true).num_qubits(),
            qft::qft_dynamic(7),
        ),
    ];
    for (n_static, dynamic) in cases {
        let reconstruction = reconstruct_unitary(&dynamic).expect("reconstructible");
        assert_eq!(
            dynamic.num_qubits() + reconstruction.added_qubits,
            n_static,
            "n_dyn + r must equal n_static"
        );
        assert_eq!(reconstruction.circuit.num_qubits(), n_static);
    }
}
