//! Equivalence checking of the additional benchmark families
//! (Deutsch–Jozsa, Grover) and error-injection checks: the verification flows
//! must accept the correct dynamic realizations and reject broken ones.

use algorithms::deutsch_jozsa::{dj_dynamic, dj_static, random_balanced_oracle, Oracle};
use algorithms::grover;
use circuit::{OpKind, QuantumCircuit, StandardGate};
use compile::{Compiler, Target};
use qcec::{
    check_functional_equivalence, verify_dynamic_functional, verify_fixed_input, Configuration,
};
use sim::ExtractionConfig;

#[test]
fn dynamic_deutsch_jozsa_is_equivalent_to_its_static_counterpart() {
    for (m, seed) in [(2usize, 1u64), (4, 2), (6, 3)] {
        let oracle = random_balanced_oracle(m, seed);
        let static_circuit = dj_static(m, &oracle, true);
        let dynamic_circuit = dj_dynamic(m, &oracle);

        let functional =
            verify_dynamic_functional(&static_circuit, &dynamic_circuit, &Configuration::default())
                .unwrap();
        assert!(
            functional.equivalence.considered_equivalent(),
            "functional verification failed for m = {m}"
        );
        assert_eq!(functional.added_qubits, m - 1);

        let fixed = verify_fixed_input(
            &static_circuit,
            &dynamic_circuit,
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .unwrap();
        assert!(fixed.equivalence.considered_equivalent());
    }
}

#[test]
fn constant_oracle_deutsch_jozsa_verifies_too() {
    for bit in [false, true] {
        let oracle = Oracle::Constant(bit);
        let static_circuit = dj_static(3, &oracle, true);
        let dynamic_circuit = dj_dynamic(3, &oracle);
        let fixed = verify_fixed_input(
            &static_circuit,
            &dynamic_circuit,
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .unwrap();
        assert!(fixed.equivalence.considered_equivalent());
    }
}

#[test]
fn broken_dynamic_deutsch_jozsa_is_rejected() {
    let oracle = Oracle::BalancedParity {
        mask: vec![true, true, false, true],
        offset: false,
    };
    let static_circuit = dj_static(4, &oracle, true);
    // Break the dynamic circuit: flip one oracle bit.
    let broken_oracle = Oracle::BalancedParity {
        mask: vec![true, false, false, true],
        offset: false,
    };
    let broken = dj_dynamic(4, &broken_oracle);
    let functional =
        verify_dynamic_functional(&static_circuit, &broken, &Configuration::default()).unwrap();
    assert!(!functional.equivalence.considered_equivalent());
    let fixed = verify_fixed_input(
        &static_circuit,
        &broken,
        &Configuration::default(),
        &ExtractionConfig::default(),
    )
    .unwrap();
    assert!(!fixed.equivalence.considered_equivalent());
}

#[test]
fn grover_survives_compilation_to_a_line_device() {
    let circuit = grover::grover(3, 0b010, Some(1), false);
    let compiled = Compiler::new(Target::line(3)).compile(&circuit).unwrap();
    let check =
        check_functional_equivalence(&circuit, &compiled.circuit, &Configuration::default())
            .unwrap();
    assert!(check.equivalence.considered_equivalent());
    // The multi-controlled Z gates must be gone after compilation.
    assert!(compiled
        .circuit
        .ops()
        .iter()
        .all(|op| op.qubits().len() <= 2));
}

#[test]
fn a_wrongly_marked_grover_oracle_is_detected() {
    let good = grover::grover(3, 0b010, Some(2), false);
    let bad = grover::grover(3, 0b011, Some(2), false);
    let check = check_functional_equivalence(&good, &bad, &Configuration::default()).unwrap();
    assert!(!check.equivalence.considered_equivalent());
}

#[test]
fn single_gate_mutations_are_detected_by_the_functional_check() {
    // Take the dynamic DJ circuit, reconstruct it, and mutate one gate of the
    // static reference: every mutation must be caught.
    let oracle = random_balanced_oracle(3, 9);
    let unmeasured = dj_static(3, &oracle, false);
    let dynamic_circuit = dj_dynamic(3, &oracle);

    #[allow(clippy::type_complexity)]
    let mutations: Vec<Box<dyn Fn(&mut QuantumCircuit)>> = vec![
        Box::new(|qc: &mut QuantumCircuit| {
            qc.x(0);
        }),
        Box::new(|qc: &mut QuantumCircuit| {
            qc.p(0.3, 1);
        }),
        Box::new(|qc: &mut QuantumCircuit| {
            qc.cx(0, 2);
        }),
    ];
    for (index, mutate) in mutations.iter().enumerate() {
        // Mutate the unitary part, then append the trailing measurements.
        let mut broken_reference = unmeasured.clone();
        mutate(&mut broken_reference);
        for q in 0..3 {
            broken_reference.measure(q, q);
        }
        let functional = verify_dynamic_functional(
            &broken_reference,
            &dynamic_circuit,
            &Configuration::default(),
        )
        .unwrap();
        assert!(
            !functional.equivalence.considered_equivalent(),
            "mutation {index} was not detected"
        );
    }
}

#[test]
fn deutsch_jozsa_oracle_structure_matches_between_realizations() {
    // The reconstructed dynamic circuit uses exactly as many CX gates as the
    // static circuit (one per set mask bit).
    let oracle = Oracle::BalancedParity {
        mask: vec![true, true, true, false, true],
        offset: false,
    };
    let static_circuit = dj_static(5, &oracle, true);
    let dynamic_circuit = dj_dynamic(5, &oracle);
    let count_cx = |qc: &QuantumCircuit| {
        qc.ops()
            .iter()
            .filter(|op| {
                matches!(&op.kind, OpKind::Unitary { gate: StandardGate::X, controls, .. } if controls.len() == 1)
            })
            .count()
    };
    assert_eq!(count_cx(&static_circuit), 4);
    assert_eq!(count_cx(&dynamic_circuit), 4);
}
