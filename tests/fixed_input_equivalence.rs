//! Integration tests for the Section 5 flow: extraction vs. simulation, and
//! the consistency of the two schemes with each other.

use algorithms::{bv, ghz, qft, qpe, random};
use qcec::{verify_fixed_input, Configuration, Equivalence};
use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};
use transform::reconstruct_unitary;

#[test]
fn extraction_agrees_with_reconstruction_plus_simulation() {
    // For any well-formed dynamic circuit, extracting its distribution
    // directly (Section 5) must agree with reconstructing it (Section 4) and
    // simulating the resulting unitary circuit.
    for seed in 0..12u64 {
        let dynamic = random::random_dynamic_circuit(3, 3, 25, seed);
        let extraction = extract_distribution(&dynamic, &ExtractionConfig::default())
            .expect("extraction succeeds");

        let reconstruction = reconstruct_unitary(&dynamic).expect("reconstructible");
        let mut simulator = StateVectorSimulator::new(reconstruction.circuit.num_qubits());
        simulator
            .run(&reconstruction.circuit)
            .expect("unitary circuit");
        let reference = simulator.outcome_distribution();

        assert!(
            reference.approx_eq(&extraction.distribution, 1e-9),
            "seed {seed}: extraction and reconstruction disagree\nextraction:\n{}\nreference:\n{}",
            extraction.distribution,
            reference
        );
    }
}

#[test]
fn bv_families_produce_identical_spike_distributions() {
    for len in [3usize, 8, 17] {
        let hidden = bv::random_hidden_string(len, len as u64);
        let report = verify_fixed_input(
            &bv::bv_static(&hidden, true),
            &bv::bv_dynamic(&hidden),
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .expect("verification runs");
        assert_eq!(report.equivalence, Equivalence::Equivalent, "len {len}");
        assert_eq!(report.dynamic_distribution.len(), 1);
    }
}

#[test]
fn qpe_families_produce_identical_distributions() {
    // Exact phase: single spike. Inexact phase: full distribution.
    for (precision, exact) in [(4usize, true), (4, false), (6, true)] {
        let phi = if exact {
            qpe::random_exact_phase(precision, 7)
        } else {
            2.0 * std::f64::consts::PI * 0.23456
        };
        let report = verify_fixed_input(
            &qpe::qpe_static(phi, precision, true),
            &qpe::iqpe_dynamic(phi, precision),
            &Configuration::default(),
            &ExtractionConfig::default(),
        )
        .expect("verification runs");
        assert_eq!(report.equivalence, Equivalence::Equivalent);
        if exact {
            assert_eq!(report.dynamic_distribution.len(), 1);
        } else {
            assert!(report.dynamic_distribution.len() > 1);
        }
    }
}

#[test]
fn qft_extraction_is_dense_but_correct() {
    let n = 6;
    let report = verify_fixed_input(
        &qft::qft_static(n, None, true),
        &qft::qft_dynamic(n),
        &Configuration::default(),
        &ExtractionConfig::default(),
    )
    .expect("verification runs");
    assert_eq!(report.equivalence, Equivalence::Equivalent);
    assert_eq!(report.dynamic_distribution.len(), 1 << n);
    // Uniform distribution.
    for (_, p) in report.dynamic_distribution.iter() {
        assert!((p - 1.0 / (1 << n) as f64).abs() < 1e-9);
    }
}

#[test]
fn fixed_input_equivalence_is_weaker_than_functional_equivalence() {
    // The linear and logarithmic GHZ preparations differ as unitaries but
    // produce the same outcome distribution from |0…0⟩.
    let a = ghz::ghz(5, true);
    let b = ghz::ghz_log_depth(5, true);
    let fixed = verify_fixed_input(
        &a,
        &b,
        &Configuration::default(),
        &ExtractionConfig::default(),
    )
    .expect("verification runs");
    assert_eq!(fixed.equivalence, Equivalence::Equivalent);

    let functional =
        qcec::check_functional_equivalence(&a, &b, &Configuration::default()).expect("checkable");
    assert_eq!(functional.equivalence, Equivalence::NotEquivalent);
}

#[test]
fn distribution_mismatch_is_reported_with_distance() {
    let report = verify_fixed_input(
        &bv::bv_static(&[true, false, true, false], true),
        &bv::bv_dynamic(&[true, false, false, false]),
        &Configuration::default(),
        &ExtractionConfig::default(),
    )
    .expect("verification runs");
    assert_eq!(report.equivalence, Equivalence::NotEquivalent);
    assert!((report.total_variation_distance - 1.0).abs() < 1e-9);
}

#[test]
fn leaves_scale_with_sparsity_not_with_register_width() {
    // 40-bit BV: a single leaf. 8-bit dynamic QFT: 256 leaves.
    let bv_result = extract_distribution(
        &bv::bv_dynamic(&bv::random_hidden_string(40, 11)),
        &ExtractionConfig::default(),
    )
    .expect("extraction succeeds");
    assert_eq!(bv_result.leaves, 1);

    let qft_result = extract_distribution(&qft::qft_dynamic(8), &ExtractionConfig::default())
        .expect("extraction succeeds");
    assert_eq!(qft_result.leaves, 256);
}
