//! Property-based integration tests: the transformation passes preserve the
//! observable behaviour of arbitrary well-formed dynamic circuits.

use algorithms::random;
use circuit::{OpKind, QuantumCircuit};
use proptest::prelude::*;
use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};
use transform::{defer_measurements, reconstruct_unitary, substitute_resets};

fn distribution_of_dynamic(circuit: &QuantumCircuit) -> sim::OutcomeDistribution {
    extract_distribution(circuit, &ExtractionConfig::default())
        .expect("extraction succeeds")
        .distribution
}

fn distribution_of_reconstructed(circuit: &QuantumCircuit) -> sim::OutcomeDistribution {
    let reconstruction = reconstruct_unitary(circuit).expect("reconstructible");
    let mut simulator = StateVectorSimulator::new(reconstruction.circuit.num_qubits());
    simulator
        .run(&reconstruction.circuit)
        .expect("reconstructed circuit is unitary");
    simulator.outcome_distribution()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reset substitution + deferred measurements preserve the
    /// measurement-outcome distribution of random well-formed dynamic
    /// circuits.
    #[test]
    fn reconstruction_preserves_distribution(seed in 0u64..512, len in 10usize..40) {
        let dynamic = random::random_dynamic_circuit(3, 3, len, seed);
        let direct = distribution_of_dynamic(&dynamic);
        let reconstructed = distribution_of_reconstructed(&dynamic);
        prop_assert!(
            direct.approx_eq(&reconstructed, 1e-9),
            "seed {seed}, len {len}"
        );
    }

    /// Reset substitution never changes the number of non-reset operations,
    /// introduces exactly one qubit per reset and leaves no reset behind.
    #[test]
    fn reset_substitution_invariants(seed in 0u64..512, len in 5usize..60) {
        let dynamic = random::random_dynamic_circuit(4, 4, len, seed);
        let resets = dynamic.reset_count();
        let result = substitute_resets(&dynamic);
        prop_assert_eq!(result.added_qubits, resets);
        prop_assert_eq!(result.circuit.reset_count(), 0);
        prop_assert_eq!(result.circuit.num_qubits(), dynamic.num_qubits() + resets);
        prop_assert_eq!(result.circuit.gate_count(), dynamic.gate_count() - resets);
        prop_assert_eq!(result.circuit.measurement_count(), dynamic.measurement_count());
    }

    /// After deferring measurements, the circuit is a unitary prefix followed
    /// by measurements only, with no classical conditions left.
    #[test]
    fn deferred_circuits_have_unitary_prefix(seed in 0u64..512, len in 5usize..60) {
        let dynamic = random::random_dynamic_circuit(4, 4, len, seed);
        let reset_free = substitute_resets(&dynamic).circuit;
        let deferred = defer_measurements(&reset_free).expect("well-formed circuits defer");
        let ops = deferred.circuit.ops();
        let first_measure = ops
            .iter()
            .position(|op| matches!(op.kind, OpKind::Measure { .. }))
            .unwrap_or(ops.len());
        for op in &ops[..first_measure] {
            prop_assert!(op.condition.is_none());
            let is_dynamic_kind =
                matches!(op.kind, OpKind::Measure { .. } | OpKind::Reset { .. });
            prop_assert!(!is_dynamic_kind);
        }
        for op in &ops[first_measure..] {
            let is_measurement = matches!(op.kind, OpKind::Measure { .. });
            prop_assert!(is_measurement);
        }
        prop_assert_eq!(deferred.circuit.measurement_count(), dynamic.measurement_count());
    }

    /// The extracted distribution is always a probability distribution.
    #[test]
    fn extraction_yields_a_probability_distribution(seed in 0u64..512, len in 10usize..50) {
        let dynamic = random::random_dynamic_circuit(3, 3, len, seed);
        let distribution = distribution_of_dynamic(&dynamic);
        let total = distribution.total();
        prop_assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
        for (_, p) in distribution.iter() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        }
    }

    /// Sequential and parallel extraction agree on random dynamic circuits.
    #[test]
    fn parallel_extraction_is_consistent(seed in 0u64..256) {
        let dynamic = random::random_dynamic_circuit(3, 3, 30, seed);
        let sequential = distribution_of_dynamic(&dynamic);
        let parallel = sim::extract_distribution_parallel(
            &dynamic,
            &ExtractionConfig::default(),
            4,
        )
        .expect("extraction succeeds")
        .distribution;
        prop_assert!(sequential.approx_eq(&parallel, 1e-9));
    }
}
