//! Smoke test of the Table 1 harness at reduced sizes: every family verifies
//! as equivalent, the timings are populated and the qualitative relations the
//! paper reports hold (transformation is cheap, extraction beats simulation
//! for sparse outputs).

use bench::{build_instance, run_row, Family, RowOptions};
use qcec::Configuration;

#[test]
fn all_families_verify_at_reduced_sizes() {
    let config = Configuration::default();
    let options = RowOptions::default();
    for (family, n) in [
        (Family::BernsteinVazirani, 13usize),
        (Family::Qft, 7),
        (Family::Qpe, 9),
    ] {
        let instance = build_instance(family, n);
        let row = run_row(&instance, &config, &options);
        assert!(
            row.functional.considered_equivalent(),
            "{family:?} n={n} did not verify"
        );
        assert!(row.t_extract.is_some(), "{family:?} extraction was cut off");
        assert!(row.t_ver.as_nanos() > 0);
        assert!(row.t_sim.as_nanos() > 0);
        // The transformation itself is orders of magnitude cheaper than the
        // verification — the paper's headline observation about t_trans.
        assert!(
            row.t_trans.as_secs_f64() <= row.t_ver.as_secs_f64(),
            "{family:?}: transformation unexpectedly dominates verification"
        );
    }
}

#[test]
fn bv_extraction_beats_static_simulation() {
    // The BV output is a single spike: extraction touches one branch while
    // the static simulation has to push a state through ~n qubits. The paper
    // reports an order of magnitude; we conservatively require extraction not
    // to be slower.
    let instance = build_instance(Family::BernsteinVazirani, 65);
    let row = run_row(
        &instance,
        &Configuration::default(),
        &RowOptions {
            skip_functional: true,
            ..Default::default()
        },
    );
    let t_extract = row.t_extract.expect("extraction finishes").as_secs_f64();
    assert!(
        t_extract <= row.t_sim.as_secs_f64(),
        "extraction ({t_extract}s) slower than simulation ({}s)",
        row.t_sim.as_secs_f64()
    );
}

#[test]
fn qft_extraction_grows_roughly_exponentially() {
    // Doubling behaviour of the extraction for dense outputs: leaves double
    // with every added qubit (we check the leaf counts rather than wall-clock
    // time to keep the test robust).
    use sim::{extract_distribution, ExtractionConfig};
    let leaves: Vec<usize> = [6usize, 7, 8]
        .iter()
        .map(|&n| {
            let instance = build_instance(Family::Qft, n);
            extract_distribution(&instance.dynamic_circuit, &ExtractionConfig::default())
                .expect("extraction succeeds")
                .leaves
        })
        .collect();
    assert_eq!(leaves[1], 2 * leaves[0]);
    assert_eq!(leaves[2], 2 * leaves[1]);
}

#[test]
fn qpe_verification_time_grows_with_precision() {
    // The paper's QPE rows show steep growth of t_ver with n; check the
    // monotone trend at small sizes (averaged over nothing — keep a generous
    // factor to avoid flakiness).
    let config = Configuration::default();
    let options = RowOptions {
        skip_fixed_input: true,
        ..Default::default()
    };
    let t9 = run_row(&build_instance(Family::Qpe, 9), &config, &options)
        .t_ver
        .as_secs_f64();
    let t15 = run_row(&build_instance(Family::Qpe, 15), &config, &options)
        .t_ver
        .as_secs_f64();
    assert!(
        t15 > t9,
        "expected t_ver to grow with the instance size ({t9} vs {t15})"
    );
}
