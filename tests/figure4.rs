//! Integration test reproducing Figure 4 and Example 7 of the paper: the
//! measurement-outcome distribution of the 3-bit IQPE circuit for
//! U = P(3π/8) and |ψ⟩ = |1⟩.

use algorithms::qpe;
use sim::{extract_distribution, ExtractionConfig, StateVectorSimulator};

/// Probability of the outcome `c2 c1 c0` (most-significant bit first, as the
/// paper prints them).
fn prob(dist: &sim::OutcomeDistribution, c2: u8, c1: u8, c0: u8) -> f64 {
    dist.probability(&[c0 == 1, c1 == 1, c2 == 1])
}

#[test]
fn figure4_leaf_probabilities() {
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let iqpe = qpe::iqpe_dynamic(phi, 3);
    let result = extract_distribution(&iqpe, &ExtractionConfig::default()).expect("extraction");
    let d = &result.distribution;

    // The paper's Fig. 4 annotates the branching probabilities 1/2, 0.15/0.85
    // and 0.69/0.31 resp. 0.96/0.04; the leaves are the products along each
    // path. Recomputed exactly:
    //   p(c0=0) = 1/2,              p(c0=1) = 1/2
    //   p(c1=0 | c0=0) ≈ 0.1464,    p(c1=1 | c0=0) ≈ 0.8536   (and mirrored)
    //   p(c2 | c0 c1) ∈ {0.6913, 0.3087, 0.9619, 0.0381}
    let expected = [
        ((0, 0, 0), 0.5 * 0.146447 * 0.691342),
        ((1, 0, 0), 0.5 * 0.146447 * 0.308658),
        ((0, 1, 0), 0.5 * 0.853553 * 0.961940),
        ((1, 1, 0), 0.5 * 0.853553 * 0.038060),
        ((0, 0, 1), 0.5 * 0.853553 * 0.961940),
        ((1, 0, 1), 0.5 * 0.853553 * 0.038060),
        ((0, 1, 1), 0.5 * 0.146447 * 0.691342),
        ((1, 1, 1), 0.5 * 0.146447 * 0.308658),
    ];
    for ((c2, c1, c0), p_expected) in expected {
        let p = prob(d, c2, c1, c0);
        assert!(
            (p - p_expected).abs() < 5e-4,
            "P(|{c2}{c1}{c0}⟩) = {p:.6}, expected {p_expected:.6}"
        );
    }

    // The two headline values of Example 7.
    assert!((prob(d, 0, 0, 1) - 0.408).abs() < 0.005);
    assert!((prob(d, 0, 1, 0) - 0.408).abs() < 0.005);

    // Completeness and branch statistics: 3 measurements + 2 resets, at most
    // 2^3 recorded outcomes.
    assert!((d.total() - 1.0).abs() < 1e-9);
    assert_eq!(result.branch_points, 5);
    assert_eq!(d.len(), 8);
}

#[test]
fn figure4_matches_static_simulation() {
    // The distribution extracted from the dynamic circuit must coincide with
    // the distribution obtained by plainly simulating the static QPE circuit.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let iqpe = qpe::iqpe_dynamic(phi, 3);
    let static_qpe = qpe::qpe_static(phi, 3, true);

    let dynamic = extract_distribution(&iqpe, &ExtractionConfig::default()).expect("extraction");
    let mut simulator = StateVectorSimulator::new(static_qpe.num_qubits());
    simulator.run(&static_qpe).expect("static simulation");
    let static_dist = simulator.outcome_distribution();

    assert!(static_dist.approx_eq(&dynamic.distribution, 1e-9));
}

#[test]
fn most_probable_outcomes_are_001_and_010() {
    // θ = 3/16 is not representable with 3 bits; the paper states that the
    // most probable estimates are |001⟩ and |010⟩.
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    let iqpe = qpe::iqpe_dynamic(phi, 3);
    let result = extract_distribution(&iqpe, &ExtractionConfig::default()).expect("extraction");
    let top = result.distribution.top_k(2);
    let as_msb_string = |bits: &Vec<bool>| -> String {
        bits.iter()
            .rev()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    };
    let mut labels: Vec<String> = top.iter().map(|(bits, _)| as_msb_string(bits)).collect();
    labels.sort();
    assert_eq!(labels, vec!["001".to_string(), "010".to_string()]);
}
