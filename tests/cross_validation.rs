//! Cross-validation of the three independent routes to the measurement
//! outcome distribution of a dynamic circuit:
//!
//! 1. the paper's branching extraction scheme (`sim::extract_distribution`),
//! 2. the dense density-matrix ensemble (`density::EnsembleSimulator`),
//! 3. stochastic shot sampling (`sim::sample_distribution`),
//!
//! and, for the static counterparts, the state-vector simulation. Agreement
//! of all of them on the benchmark families is strong evidence that each is
//! implemented correctly.

use algorithms::{bv, deutsch_jozsa, qpe, teleport};
use density::EnsembleSimulator;
use sim::{
    extract_distribution, sample_distribution, ExtractionConfig, ShotConfig, StateVectorSimulator,
};

fn exact_methods_agree(circuit: &circuit::QuantumCircuit) {
    let extraction = extract_distribution(circuit, &ExtractionConfig::default()).unwrap();
    let mut ensemble = EnsembleSimulator::new(circuit).unwrap();
    ensemble.run(circuit).unwrap();
    assert!(
        extraction
            .distribution
            .approx_eq(&ensemble.outcome_distribution(), 1e-9),
        "extraction and ensemble disagree for {}",
        circuit.name()
    );
}

fn sampling_converges(circuit: &circuit::QuantumCircuit, shots: usize, tolerance: f64) {
    let extraction = extract_distribution(circuit, &ExtractionConfig::default()).unwrap();
    let sampled = sample_distribution(circuit, &ShotConfig { shots, seed: 2024 }).unwrap();
    let distance = extraction
        .distribution
        .total_variation_distance(&sampled.distribution);
    assert!(
        distance < tolerance,
        "sampling of {} did not converge: TV distance {distance}",
        circuit.name()
    );
}

#[test]
fn iqpe_distribution_agrees_across_methods() {
    let phi = 3.0 * std::f64::consts::PI / 8.0;
    for precision in 2..=4 {
        let iqpe = qpe::iqpe_dynamic(phi, precision);
        exact_methods_agree(&iqpe);
    }
    let iqpe = qpe::iqpe_dynamic(phi, 3);
    sampling_converges(&iqpe, 20_000, 0.05);
}

#[test]
fn dynamic_bv_distribution_agrees_across_methods() {
    let hidden = [true, false, true, true, false];
    let dynamic = bv::bv_dynamic(&hidden);
    exact_methods_agree(&dynamic);
    sampling_converges(&dynamic, 200, 1e-9); // deterministic output

    // The static counterpart's simulation gives the same (deterministic)
    // answer: the hidden string itself.
    let static_circuit = bv::bv_static(&hidden, true);
    let mut simulator = StateVectorSimulator::new(static_circuit.num_qubits());
    simulator.run(&static_circuit).unwrap();
    let reference = simulator.outcome_distribution();
    let extraction = extract_distribution(&dynamic, &ExtractionConfig::default()).unwrap();
    assert!(reference.approx_eq(&extraction.distribution, 1e-9));
    assert!((reference.probability(&hidden) - 1.0).abs() < 1e-9);
}

#[test]
fn dynamic_deutsch_jozsa_distribution_agrees_across_methods() {
    // Balanced oracle: the outcome reveals the mask deterministically.
    let oracle = deutsch_jozsa::random_balanced_oracle(4, 5);
    let dynamic = deutsch_jozsa::dj_dynamic(4, &oracle);
    exact_methods_agree(&dynamic);

    let static_circuit = deutsch_jozsa::dj_static(4, &oracle, true);
    let mut simulator = StateVectorSimulator::new(static_circuit.num_qubits());
    simulator.run(&static_circuit).unwrap();
    let extraction = extract_distribution(&dynamic, &ExtractionConfig::default()).unwrap();
    assert!(simulator
        .outcome_distribution()
        .approx_eq(&extraction.distribution, 1e-9));

    // Constant oracle: the all-zeros outcome has probability one.
    let constant = deutsch_jozsa::dj_dynamic(3, &deutsch_jozsa::Oracle::Constant(true));
    let extraction = extract_distribution(&constant, &ExtractionConfig::default()).unwrap();
    assert!((extraction.distribution.probability(&[false; 3]) - 1.0).abs() < 1e-9);
}

#[test]
fn teleportation_distribution_agrees_across_methods() {
    let circuit = teleport::teleport(0.7, 0.3, -0.4, true);
    exact_methods_agree(&circuit);
}

#[test]
fn grover_amplifies_the_marked_state() {
    use algorithms::grover;
    let marked = 0b101;
    let circuit = grover::grover(3, marked, None, true);
    let mut simulator = StateVectorSimulator::new(3);
    simulator.run(&circuit).unwrap();
    let distribution = simulator.outcome_distribution();
    let p_marked = distribution.probability_of_index(marked);
    assert!(
        p_marked > 0.9,
        "Grover success probability too low: {p_marked}"
    );
    // And the density-matrix simulation agrees with the decision-diagram one.
    let mut rho =
        density::DensityMatrixSimulator::new(3, density::NoiseModel::noiseless()).unwrap();
    rho.run(&circuit.without_measurements()).unwrap();
    let diagonal = rho.state().diagonal_probabilities();
    assert!((diagonal[marked] - p_marked).abs() < 1e-9);
}

#[test]
fn noise_degrades_the_grover_peak_but_verification_uses_ideal_circuits() {
    use algorithms::grover;
    let marked = 0b11;
    let circuit = grover::grover(2, marked, None, false);
    let mut ideal =
        density::DensityMatrixSimulator::new(2, density::NoiseModel::noiseless()).unwrap();
    ideal.run(&circuit).unwrap();
    let mut noisy =
        density::DensityMatrixSimulator::new(2, density::NoiseModel::depolarizing(0.02, 0.05))
            .unwrap();
    noisy.run(&circuit).unwrap();
    let p_ideal = ideal.state().diagonal_probabilities()[marked];
    let p_noisy = noisy.state().diagonal_probabilities()[marked];
    assert!(p_ideal > 0.99);
    assert!(p_noisy < p_ideal);
}
