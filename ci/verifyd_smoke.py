#!/usr/bin/env python3
"""verifyd daemon smoke test.

Usage: verifyd_smoke.py VERIFYD_BIN VERIFY_BIN QASM_DIR

Exercises the daemon end to end against the acceptance QASM pairs in
QASM_DIR (``{name}.left.qasm`` / ``{name}.right.qasm``):

1. one-shot baseline: ``verify --dir`` produces the reference verdicts;
2. daemon A (3 workers) serves 3 concurrent unix-socket clients, two
   rounds over all pairs — verdicts must match the baseline exactly,
   round 2 must report warm-store reuse (``warm_hits > 0``), ``stats``
   must balance, and ``drain`` must answer cleanly and exit 0;
3. daemon B (1 worker, zero queue) is flooded until admission control
   rejects with the SATURATED code, a client disconnect cancels its
   in-flight race, and ``shutdown`` exits 0.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

SATURATED = -32020


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class Client:
    """One line-delimited JSON-RPC connection."""

    def __init__(self, path, timeout=300):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.file = self.sock.makefile("rwb")

    def send(self, request):
        self.file.write((json.dumps(request) + "\n").encode())
        self.file.flush()

    def recv(self):
        line = self.file.readline()
        if not line:
            fail("connection closed while waiting for a response")
        return json.loads(line)

    def call(self, request):
        self.send(request)
        return self.recv()

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def start_daemon(binary, sock_path, *flags):
    daemon = subprocess.Popen([binary, "--socket", sock_path, *flags])
    deadline = time.time() + 60
    while time.time() < deadline:
        if daemon.poll() is not None:
            fail(f"daemon exited early with {daemon.returncode}")
        try:
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.connect(sock_path)
            probe.close()
            return daemon
        except OSError:
            time.sleep(0.05)
    fail("daemon socket never came up")


def pair_request(rpc_id, qasm_dir, name):
    return {
        "id": rpc_id,
        "method": "verify-pair",
        "params": {
            "name": name,
            "left": os.path.join(qasm_dir, f"{name}.left.qasm"),
            "right": os.path.join(qasm_dir, f"{name}.right.qasm"),
        },
    }


def main():
    if len(sys.argv) != 4:
        fail(__doc__)
    verifyd_bin, verify_bin, qasm_dir = sys.argv[1:4]
    pairs = sorted(
        f[: -len(".left.qasm")]
        for f in os.listdir(qasm_dir)
        if f.endswith(".left.qasm")
    )
    if len(pairs) < 4:
        fail(f"expected >=4 QASM pairs in {qasm_dir}, found {pairs}")
    tmp = tempfile.mkdtemp(prefix="verifyd-smoke-")

    # --- 1. one-shot baseline -------------------------------------------
    report_path = os.path.join(tmp, "oneshot.json")
    subprocess.run(
        [verify_bin, "--dir", qasm_dir, "--out", report_path], check=True
    )
    with open(report_path) as f:
        oneshot = {p["name"]: p for p in json.load(f)["pairs"]}
    if set(oneshot) != set(pairs):
        fail(f"one-shot report names {sorted(oneshot)} != pairs {pairs}")

    # --- 2. daemon A: 3 concurrent clients, two rounds, parity + warmth --
    sock_a = os.path.join(tmp, "a.sock")
    daemon_a = start_daemon(verifyd_bin, sock_a, "--workers", "3", "--max-queue", "8")
    results = {}
    errors = []
    lock = threading.Lock()

    def client_worker(index):
        try:
            client = Client(sock_a)
            for round_number in (1, 2):
                for offset, name in enumerate(pairs):
                    if offset % 3 != index:
                        continue
                    rpc_id = round_number * 1000 + index * 100 + offset
                    response = client.call(pair_request(rpc_id, qasm_dir, name))
                    if response.get("id") != rpc_id:
                        raise AssertionError(f"id mismatch: {response}")
                    if "result" not in response:
                        raise AssertionError(f"unexpected error: {response}")
                    with lock:
                        results[(round_number, name)] = response["result"]
            client.close()
        except Exception as error:  # noqa: BLE001 — report into the main thread
            with lock:
                errors.append(f"client {index}: {error!r}")

    threads = [threading.Thread(target=client_worker, args=(i,)) for i in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        fail("; ".join(errors))

    for (round_number, name), result in sorted(results.items()):
        expected = oneshot[name]
        got_verdict = result["report"]["verdict"]
        if got_verdict != expected["verdict"]:
            fail(
                f"round {round_number} {name}: daemon verdict {got_verdict!r} "
                f"!= one-shot {expected['verdict']!r}"
            )
        if result["considered_equivalent"] != expected["considered_equivalent"]:
            fail(f"round {round_number} {name}: equivalence flag diverges")
        if result["cancelled"]:
            fail(f"round {round_number} {name}: spuriously cancelled")
    warm_hits = sum(
        (result["report"].get("shared_store") or {}).get("warm_hits", 0)
        for (round_number, _), result in results.items()
        if round_number == 2
    )
    if warm_hits <= 0:
        fail("round 2 requests saw no warm-store reuse (warm_hits == 0)")

    admin = Client(sock_a)
    stats = admin.call({"id": "stats", "method": "stats"})["result"]
    if stats["completed"] != 2 * len(pairs):
        fail(f"stats.completed {stats['completed']} != {2 * len(pairs)}")
    if stats["queue_depth"] != 0 or stats["inflight"] != 0:
        fail(f"daemon not idle before drain: {stats}")
    if stats["attached_workspaces"] != 0:
        fail(f"leaked workspaces on shelved stores: {stats}")
    drain = admin.call({"id": "drain", "method": "drain"})
    if not drain.get("result", {}).get("stopped"):
        fail(f"drain did not acknowledge: {drain}")
    if daemon_a.wait(timeout=60) != 0:
        fail(f"daemon A exited {daemon_a.returncode} after drain")
    if os.path.exists(sock_a):
        fail("daemon A left its socket file behind")
    print(f"daemon A ok: {2 * len(pairs)} requests over 3 clients, "
          f"verdict parity with one-shot, warm_hits={warm_hits}, clean drain")

    # --- 3. daemon B: saturation + disconnect-cancels + shutdown ---------
    sock_b = os.path.join(tmp, "b.sock")
    daemon_b = start_daemon(verifyd_bin, sock_b, "--workers", "1", "--max-queue", "0")
    flooder = Client(sock_b)
    heavy = pairs[-1]  # widest pair sorts last (qpe9 in the acceptance set)
    for i in range(8):
        flooder.send(pair_request(i, qasm_dir, heavy))
    rejects = 0
    # Admission errors are written synchronously as each line is read,
    # while the one admitted race takes seconds — so the first 7 responses
    # are (all but pathologically) the rejections. One slot is in flight,
    # zero may queue: >=1 of 8 must bounce with SATURATED.
    for _ in range(7):
        response = flooder.recv()
        if "error" in response:
            if response["error"]["code"] != SATURATED:
                fail(f"unexpected rejection code: {response}")
            rejects += 1
    if rejects < 1:
        fail("no admission rejection despite a saturating flood")
    # Disconnect with the admitted race still in flight: the daemon must
    # cancel it (the shutdown below would otherwise wait out a full race).
    flooder.close()

    closer = Client(sock_b)
    shutdown = closer.call({"id": "bye", "method": "shutdown"})
    if not shutdown.get("result", {}).get("stopped"):
        fail(f"shutdown did not acknowledge: {shutdown}")
    if daemon_b.wait(timeout=60) != 0:
        fail(f"daemon B exited {daemon_b.returncode} after shutdown")
    print(f"daemon B ok: {rejects}/8 flood requests rejected by admission "
          "control, disconnect cancelled the rest, clean shutdown")


if __name__ == "__main__":
    main()
